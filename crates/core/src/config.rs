//! Configuration of the BulkSC machine and its evaluation presets.
//!
//! The paper's Table 2 defines four BulkSC configurations; each is a
//! [`BulkConfig`] preset here:
//!
//! | paper | preset | meaning |
//! |---|---|---|
//! | `BSCbase`  | [`BulkConfig::bsc_base`]  | basic design of §4 |
//! | `BSCdypvt` | [`BulkConfig::bsc_dypvt`] | + dynamically-private data (§5.2) |
//! | `BSCstpvt` | [`BulkConfig::bsc_stpvt`] | + statically-private data (§5.1) |
//! | `BSCexact` | [`BulkConfig::bsc_exact`] | `BSCdypvt` with a "magic" alias-free signature |

use bulksc_cpu::{BaselineModel, CoreConfig};
use bulksc_mem::{CacheConfig, DirConfig};
use bulksc_net::{Cycle, FabricConfig};
use bulksc_sig::{SigMode, SignatureConfig};

/// How BulkSC treats private data (paper §5).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PrivateMode {
    /// No private-data optimization (`BSCbase`).
    None,
    /// Dynamically-private data: Wpriv + Private Buffer (§5.2).
    Dynamic,
    /// Statically-private data: the page attribute marks stack/private
    /// regions; Wpriv goes straight to the directory (§5.1).
    Static,
}

/// Parameters of the BulkSC consistency machinery.
#[derive(Clone, Debug)]
pub struct BulkConfig {
    /// Target dynamic instructions per chunk (Table 2: ≈1000).
    pub chunk_size: u64,
    /// Maximum simultaneously active (undecided) chunks per core
    /// (Table 2: 2).
    pub chunks_per_core: u32,
    /// Commit arbitration latency added by the arbiter (Table 2: 30
    /// cycles round trip; the fabric hops account for part of it).
    pub arb_latency: Cycle,
    /// Signature geometry.
    pub sig: SignatureConfig,
    /// Bloom signatures or the "magic" exact signature (`BSCexact`).
    pub sig_mode: SigMode,
    /// The RSig commit bandwidth optimization (§4.2.2): send W only, let
    /// the arbiter ask for R when its list is non-empty.
    pub rsig_opt: bool,
    /// Private-data handling (§5).
    pub private: PrivateMode,
    /// Private Buffer capacity in lines (§5.2: ≈24).
    pub private_buffer: u32,
    /// Consecutive squashes of one chunk before the chunk size starts
    /// halving (§3.3 forward progress, first measure).
    pub backoff_after: u32,
    /// Consecutive squashes before pre-arbitration (§3.3, second measure).
    pub prearb_after: u32,
    /// Cycles to wait before retrying a denied commit request.
    pub commit_retry: Cycle,
    /// Number of range arbiters (1 = the single-arbiter design; >1 =
    /// the distributed arbiter of §4.2.3 with a G-arbiter).
    pub num_arbiters: u32,
    /// TEST-ONLY fault injection: a ready chunk self-grants its commit
    /// without consulting the arbiter, so no W-signature broadcast reaches
    /// the other cores and conflicting chunks are never disambiguated.
    /// This deliberately breaks SC; it exists so the `bulksc-check` oracle
    /// can be demonstrated to catch real reordering bugs. No preset or
    /// builder sets it.
    pub commit_without_arbitration: bool,
    /// Conflict-attribution forensics (`--xray`): squash and commit-deny
    /// trace events carry the aggressor chunk, exact-shadow witness
    /// lines, and the conflict site. Off by default — attribution costs
    /// exact-set intersections on the squash path and must never tax a
    /// plain run; it reads simulation state but never writes it, so
    /// SimReports are identical either way.
    pub xray: bool,
}

impl BulkConfig {
    /// The basic BulkSC design of §4 (`BSCbase`).
    pub fn bsc_base() -> Self {
        BulkConfig {
            chunk_size: 1000,
            chunks_per_core: 2,
            arb_latency: 20, // + 2 × 5-cycle hops ≈ Table 2's 30 cycles
            sig: SignatureConfig::default(),
            sig_mode: SigMode::Bloom,
            rsig_opt: true,
            private: PrivateMode::None,
            private_buffer: 24,
            backoff_after: 1,
            prearb_after: 6,
            commit_retry: 30,
            num_arbiters: 1,
            commit_without_arbitration: false,
            xray: false,
        }
    }

    /// `BSCbase` + the dynamically-private data optimization (§5.2) —
    /// the paper's preferred configuration.
    pub fn bsc_dypvt() -> Self {
        BulkConfig {
            private: PrivateMode::Dynamic,
            ..Self::bsc_base()
        }
    }

    /// `BSCbase` + the statically-private data optimization (§5.1).
    pub fn bsc_stpvt() -> Self {
        BulkConfig {
            private: PrivateMode::Static,
            ..Self::bsc_base()
        }
    }

    /// `BSCdypvt` with a "magic" alias-free signature.
    pub fn bsc_exact() -> Self {
        BulkConfig {
            sig_mode: SigMode::Exact,
            ..Self::bsc_dypvt()
        }
    }

    /// Same configuration with a different chunk size (Figure 10 sweeps
    /// 1000 / 2000 / 4000).
    pub fn with_chunk_size(mut self, n: u64) -> Self {
        self.chunk_size = n;
        self
    }

    /// Same configuration with the RSig optimization disabled (the `N`
    /// bars of Figure 11).
    pub fn without_rsig(mut self) -> Self {
        self.rsig_opt = false;
        self
    }

    /// Same configuration with `n` range arbiters plus the G-arbiter
    /// (§4.2.3).
    pub fn with_arbiters(mut self, n: u32) -> Self {
        assert!(n >= 1, "at least one arbiter");
        self.num_arbiters = n;
        self
    }

    /// Same configuration with conflict-attribution forensics on (the
    /// `--xray` artifact path).
    pub fn with_xray(mut self) -> Self {
        self.xray = true;
        self
    }
}

/// Which consistency machinery the simulated machine runs.
#[derive(Clone, Debug)]
pub enum Model {
    /// One of the baselines (SC, RC, SC++).
    Baseline(BaselineModel),
    /// BulkSC with the given configuration.
    Bulk(BulkConfig),
}

impl Model {
    /// Short display name (matches the paper's configuration names).
    pub fn name(&self) -> String {
        match self {
            Model::Baseline(BaselineModel::Sc) => "SC".into(),
            Model::Baseline(BaselineModel::Rc) => "RC".into(),
            Model::Baseline(BaselineModel::Scpp) => "SC++".into(),
            Model::Bulk(b) => {
                let base = match (b.sig_mode, b.private) {
                    (SigMode::Exact, _) => "BSCexact",
                    (_, PrivateMode::None) => "BSCbase",
                    (_, PrivateMode::Dynamic) => "BSCdypvt",
                    (_, PrivateMode::Static) => "BSCstpvt",
                };
                base.to_string()
            }
        }
    }
}

/// Full machine configuration (Table 2).
#[derive(Clone, Debug)]
pub struct SystemConfig {
    /// Consistency model.
    pub model: Model,
    /// Number of cores (Table 2: 8).
    pub cores: u32,
    /// Number of directory modules (Table 2: 1).
    pub dirs: u32,
    /// Core pipeline parameters.
    pub core: CoreConfig,
    /// Private L1 geometry.
    pub l1: CacheConfig,
    /// Directory/L2 parameters.
    pub dir: DirConfig,
    /// Interconnect parameters.
    pub fabric: FabricConfig,
    /// Dynamic instructions each core executes before stopping (the run
    /// length of an experiment).
    pub budget: u64,
}

impl SystemConfig {
    /// The paper's 8-core CMP with a single directory, running `model`.
    pub fn cmp8(model: Model) -> Self {
        let mut dir = DirConfig::default();
        if let Model::Bulk(b) = &model {
            dir.sig = b.sig.clone();
            dir.sig_mode = b.sig_mode;
            // §4.3: a speculative accessor is never marked owner.
            dir.grant_exclusive = false;
        }
        SystemConfig {
            model,
            cores: 8,
            dirs: 1,
            core: CoreConfig::default(),
            l1: CacheConfig::l1_default(),
            dir,
            fabric: FabricConfig::default(),
            budget: 200_000,
        }
    }

    /// Number of arbiters the model needs (0 for baselines).
    pub fn num_arbiters(&self) -> u32 {
        match &self.model {
            Model::Baseline(_) => 0,
            Model::Bulk(b) => b.num_arbiters,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_match_paper_names() {
        assert_eq!(Model::Bulk(BulkConfig::bsc_base()).name(), "BSCbase");
        assert_eq!(Model::Bulk(BulkConfig::bsc_dypvt()).name(), "BSCdypvt");
        assert_eq!(Model::Bulk(BulkConfig::bsc_stpvt()).name(), "BSCstpvt");
        assert_eq!(Model::Bulk(BulkConfig::bsc_exact()).name(), "BSCexact");
        assert_eq!(Model::Baseline(BaselineModel::Rc).name(), "RC");
        assert_eq!(Model::Baseline(BaselineModel::Scpp).name(), "SC++");
    }

    #[test]
    fn preset_parameters() {
        let b = BulkConfig::bsc_base();
        assert_eq!(b.chunk_size, 1000);
        assert_eq!(b.chunks_per_core, 2);
        assert_eq!(b.private_buffer, 24);
        assert!(b.rsig_opt);
        assert_eq!(b.private, PrivateMode::None);
        assert_eq!(BulkConfig::bsc_exact().sig_mode, SigMode::Exact);
    }

    #[test]
    fn builders_adjust_fields() {
        let b = BulkConfig::bsc_dypvt()
            .with_chunk_size(4000)
            .without_rsig()
            .with_arbiters(4);
        assert_eq!(b.chunk_size, 4000);
        assert!(!b.rsig_opt);
        assert_eq!(b.num_arbiters, 4);
        assert!(!b.xray, "forensics must be off by default");
        assert!(b.with_xray().xray);
    }

    #[test]
    fn cmp8_defaults() {
        let cfg = SystemConfig::cmp8(Model::Bulk(BulkConfig::bsc_dypvt()));
        assert_eq!(cfg.cores, 8);
        assert_eq!(cfg.dirs, 1);
        assert_eq!(cfg.num_arbiters(), 1);
        let base = SystemConfig::cmp8(Model::Baseline(BaselineModel::Sc));
        assert_eq!(base.num_arbiters(), 0);
    }

    #[test]
    #[should_panic(expected = "at least one arbiter")]
    fn zero_arbiters_rejected() {
        BulkConfig::bsc_base().with_arbiters(0);
    }
}
