//! The global arbiter (G-arbiter) of the distributed design (§4.2.3,
//! Figure 8(b)).
//!
//! Chunks that accessed several address ranges cannot be decided by one
//! range arbiter's partial W list. The core sends such commits to the
//! G-arbiter, which fans `ArbCheck`s out to the involved range arbiters,
//! combines their verdicts, and either releases the reserved commit
//! everywhere or abandons it.
//!
//! The paper's speed-up option is also implemented: the G-arbiter keeps
//! copies of the W signatures of multi-range commits in flight, so a
//! colliding request can be denied immediately without a round trip.

use std::collections::HashMap;

use bulksc_metrics as metrics;
use bulksc_net::{ChunkTag, Cycle, Envelope, Fabric, Message, NodeId};
use bulksc_sig::TrackedSig;
use bulksc_trace::{ConflictAttr, Event, TraceHandle};

/// G-arbiter event counters.
#[derive(Clone, Copy, Debug, Default)]
pub struct GArbStats {
    /// Multi-range commit requests received.
    pub requests: u64,
    /// Requests denied by the local fast W check (no fan-out needed).
    pub fast_denials: u64,
    /// Requests granted after all range arbiters agreed.
    pub grants: u64,
    /// Requests denied because some range arbiter saw a collision.
    pub denials: u64,
}

#[derive(Debug)]
struct GTrack {
    core: u32,
    arbs: Vec<u32>,
    verdicts_left: u32,
    any_nok: bool,
    /// Set once decided; `done_left` then counts ArbDones.
    done_left: u32,
}

/// The coordinator of multi-range commits.
#[derive(Debug)]
pub struct GArbiter {
    arb_latency: Cycle,
    num_arbiters: u32,
    /// Fast-denial copies of in-flight multi-range W signatures.
    fast_w: Vec<(ChunkTag, TrackedSig)>,
    pending: HashMap<ChunkTag, GTrack>,
    /// Conflict-attribution forensics on deny events (off by default).
    xray: bool,
    stats: GArbStats,
    trace: TraceHandle,
}

impl GArbiter {
    /// A G-arbiter coordinating `num_arbiters` range arbiters.
    pub fn new(arb_latency: Cycle, num_arbiters: u32) -> Self {
        GArbiter {
            arb_latency,
            num_arbiters,
            fast_w: Vec::new(),
            pending: HashMap::new(),
            xray: false,
            stats: GArbStats::default(),
            trace: TraceHandle::off(),
        }
    }

    /// Route this G-arbiter's grant/deny events to `trace`'s sinks.
    pub fn set_tracer(&mut self, trace: TraceHandle) {
        self.trace = trace;
    }

    /// Enable conflict-attribution forensics on deny events.
    pub fn set_xray(&mut self, on: bool) {
        self.xray = on;
    }

    /// Event counters.
    pub fn stats(&self) -> &GArbStats {
        &self.stats
    }

    /// One-line diagnostic snapshot.
    pub fn debug_state(&self) -> String {
        format!(
            "garbiter pending={:?} fast_w={}",
            self.pending
                .iter()
                .map(|(c, tr)| format!(
                    "{c}:v{}d{}nok{}",
                    tr.verdicts_left, tr.done_left, tr.any_nok
                ))
                .collect::<Vec<_>>(),
            self.fast_w.len()
        )
    }

    /// The range arbiters a chunk with signatures `w`, `r` must consult.
    /// A chunk with no memory accesses at all (possible when a chunk
    /// boundary falls inside a long compute stretch) conflicts with
    /// nothing but still needs the commit handshake; it is routed to
    /// range arbiter 0.
    pub fn arbiters_of(w: &TrackedSig, r: &TrackedSig, num_arbiters: u32) -> Vec<u32> {
        let mut set = w.decode_sets(num_arbiters);
        set.extend(r.decode_sets(num_arbiters));
        set.sort_unstable();
        set.dedup();
        if set.is_empty() {
            set.push(0);
        }
        set
    }

    /// Process one incoming message.
    ///
    /// # Panics
    ///
    /// Panics on messages the G-arbiter can never receive.
    pub fn handle(&mut self, now: Cycle, env: Envelope, fab: &mut Fabric) {
        let _prof = bulksc_prof::scope(bulksc_prof::Phase::Arbiter);
        match env.msg {
            Message::CommitReq { chunk, w, r } => self.commit_req(now, env.src, chunk, w, r, fab),
            Message::ArbCheckResp { chunk, ok } => self.check_resp(now, chunk, ok, fab),
            Message::ArbDone { chunk } => self.arb_done(now, chunk, fab),
            other => panic!("G-arbiter received unexpected message {other:?}"),
        }
    }

    fn commit_req(
        &mut self,
        now: Cycle,
        src: NodeId,
        chunk: ChunkTag,
        w: Box<TrackedSig>,
        r: Option<Box<TrackedSig>>,
        fab: &mut Fabric,
    ) {
        let NodeId::Core(core) = src else {
            panic!("commit requests come from cores, got {src:?}");
        };
        self.stats.requests += 1;
        metrics::inc(metrics::Counter::GarbRequests);
        let r = r.expect("multi-range commits always carry the R signature");

        // Fast denial against locally-known in-flight W signatures.
        if let Some((agg, committing)) = self
            .fast_w
            .iter()
            .find(|(_, committing)| committing.intersects(&w) || committing.intersects(&r))
        {
            self.stats.fast_denials += 1;
            metrics::inc(metrics::Counter::GarbFastDenials);
            let attr = self.xray.then(|| {
                const CAP: usize = bulksc_trace::XRAY_WITNESS_CAP;
                let mut witnesses: Vec<u64> = committing
                    .exact_witnesses(&w, CAP)
                    .iter()
                    .map(|l| l.0)
                    .collect();
                witnesses.extend(committing.exact_witnesses(&r, CAP).iter().map(|l| l.0));
                witnesses.sort_unstable();
                witnesses.dedup();
                witnesses.truncate(CAP);
                ConflictAttr {
                    agg_core: Some(agg.core),
                    agg_seq: Some(agg.seq),
                    site: "garb-fast",
                    witnesses,
                }
            });
            self.trace.emit(now, || Event::CommitDeny {
                core: chunk.core,
                seq: chunk.seq,
                xray: attr.map(Box::new),
            });
            fab.send_delayed(
                now,
                self.arb_latency,
                NodeId::GArbiter,
                src,
                Message::CommitResp { chunk, ok: false },
            );
            return;
        }

        let arbs = Self::arbiters_of(&w, &r, self.num_arbiters);
        debug_assert!(
            !arbs.is_empty(),
            "a chunk with any access touches some range"
        );
        self.pending.insert(
            chunk,
            GTrack {
                core,
                arbs: arbs.clone(),
                verdicts_left: arbs.len() as u32,
                any_nok: false,
                done_left: 0,
            },
        );
        if !w.is_empty() {
            self.fast_w.push((chunk, (*w).clone()));
        }
        for a in arbs {
            fab.send(
                now,
                NodeId::GArbiter,
                NodeId::Arbiter(a),
                Message::ArbCheck {
                    chunk,
                    w: w.clone(),
                    r: Some(r.clone()),
                },
            );
        }
    }

    fn check_resp(&mut self, now: Cycle, chunk: ChunkTag, ok: bool, fab: &mut Fabric) {
        let Some(track) = self.pending.get_mut(&chunk) else {
            return;
        };
        track.verdicts_left -= 1;
        track.any_nok |= !ok;
        if track.verdicts_left > 0 {
            return;
        }
        let decided_ok = !track.any_nok;
        let track = self.pending.get_mut(&chunk).expect("exists");
        if decided_ok {
            self.stats.grants += 1;
            self.trace.emit(now, || Event::CommitGrant {
                core: chunk.core,
                seq: chunk.seq,
            });
            track.done_left = track.arbs.len() as u32;
            let core = track.core;
            let arbs = track.arbs.clone();
            fab.send_delayed(
                now,
                self.arb_latency,
                NodeId::GArbiter,
                NodeId::Core(core),
                Message::CommitResp { chunk, ok: true },
            );
            for a in arbs {
                fab.send(
                    now,
                    NodeId::GArbiter,
                    NodeId::Arbiter(a),
                    Message::ArbRelease {
                        chunk,
                        commit: true,
                    },
                );
            }
        } else {
            self.stats.denials += 1;
            metrics::inc(metrics::Counter::GarbDenials);
            // The colliding W lives at whichever range arbiter voted no;
            // the G-arbiter sees only the verdict, so no aggressor here.
            let attr = self.xray.then(|| ConflictAttr {
                agg_core: None,
                agg_seq: None,
                site: "garb-vote",
                witnesses: Vec::new(),
            });
            self.trace.emit(now, || Event::CommitDeny {
                core: chunk.core,
                seq: chunk.seq,
                xray: attr.map(Box::new),
            });
            let core = track.core;
            let arbs = track.arbs.clone();
            self.pending.remove(&chunk);
            self.fast_w.retain(|(t, _)| *t != chunk);
            fab.send_delayed(
                now,
                self.arb_latency,
                NodeId::GArbiter,
                NodeId::Core(core),
                Message::CommitResp { chunk, ok: false },
            );
            // Release every reservation (arbiters that denied reserved
            // nothing; the release is idempotent there).
            for a in arbs {
                fab.send(
                    now,
                    NodeId::GArbiter,
                    NodeId::Arbiter(a),
                    Message::ArbRelease {
                        chunk,
                        commit: false,
                    },
                );
            }
        }
    }

    fn arb_done(&mut self, now: Cycle, chunk: ChunkTag, fab: &mut Fabric) {
        let Some(track) = self.pending.get_mut(&chunk) else {
            return;
        };
        track.done_left -= 1;
        if track.done_left > 0 {
            return;
        }
        let track = self.pending.remove(&chunk).expect("exists");
        self.fast_w.retain(|(t, _)| *t != chunk);
        fab.send(
            now,
            NodeId::GArbiter,
            NodeId::Core(track.core),
            Message::CommitComplete { chunk },
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bulksc_net::FabricConfig;
    use bulksc_sig::{LineAddr, SigMode, SignatureConfig};

    fn sig(lines: &[u64]) -> Box<TrackedSig> {
        let mut s = TrackedSig::new(&SignatureConfig::default(), SigMode::Exact);
        for &l in lines {
            s.insert(LineAddr(l));
        }
        Box::new(s)
    }

    fn env(src: NodeId, msg: Message) -> Envelope {
        Envelope {
            src,
            dst: NodeId::GArbiter,
            msg,
        }
    }

    fn drain(fab: &mut Fabric) -> Vec<Envelope> {
        fab.deliver_due(u64::MAX / 2)
    }

    fn tag(seq: u64) -> ChunkTag {
        ChunkTag { core: 0, seq }
    }

    #[test]
    fn multi_range_fanout_and_grant() {
        let mut g = GArbiter::new(5, 4);
        let mut fab = Fabric::new(FabricConfig { hop_latency: 1 });
        // Lines 0 and 1 live in ranges 0 and 1 (exact signatures).
        g.handle(
            0,
            env(
                NodeId::Core(2),
                Message::CommitReq {
                    chunk: tag(1),
                    w: sig(&[0, 1]),
                    r: Some(sig(&[2])),
                },
            ),
            &mut fab,
        );
        let out = drain(&mut fab);
        let checks: Vec<NodeId> = out
            .iter()
            .filter(|e| matches!(e.msg, Message::ArbCheck { .. }))
            .map(|e| e.dst)
            .collect();
        assert_eq!(
            checks,
            vec![NodeId::Arbiter(0), NodeId::Arbiter(1), NodeId::Arbiter(2)],
            "W ranges 0,1 plus R range 2"
        );
        for a in [0, 1, 2] {
            g.handle(
                10,
                env(
                    NodeId::Arbiter(a),
                    Message::ArbCheckResp {
                        chunk: tag(1),
                        ok: true,
                    },
                ),
                &mut fab,
            );
        }
        let out = drain(&mut fab);
        assert!(out
            .iter()
            .any(|e| matches!(e.msg, Message::CommitResp { ok: true, .. })
                && e.dst == NodeId::Core(2)));
        let releases: Vec<&Envelope> = out
            .iter()
            .filter(|e| matches!(e.msg, Message::ArbRelease { commit: true, .. }))
            .collect();
        assert_eq!(releases.len(), 3);
        // Completion after every arbiter reports done.
        for a in [0, 1, 2] {
            g.handle(
                30,
                env(NodeId::Arbiter(a), Message::ArbDone { chunk: tag(1) }),
                &mut fab,
            );
        }
        let out = drain(&mut fab);
        assert!(matches!(out[0].msg, Message::CommitComplete { .. }));
        assert_eq!(g.stats().grants, 1);
    }

    #[test]
    fn one_nok_denies_and_releases() {
        let mut g = GArbiter::new(5, 4);
        let mut fab = Fabric::new(FabricConfig { hop_latency: 1 });
        g.handle(
            0,
            env(
                NodeId::Core(1),
                Message::CommitReq {
                    chunk: tag(2),
                    w: sig(&[0, 1]),
                    r: Some(sig(&[])),
                },
            ),
            &mut fab,
        );
        drain(&mut fab);
        g.handle(
            5,
            env(
                NodeId::Arbiter(0),
                Message::ArbCheckResp {
                    chunk: tag(2),
                    ok: true,
                },
            ),
            &mut fab,
        );
        g.handle(
            6,
            env(
                NodeId::Arbiter(1),
                Message::ArbCheckResp {
                    chunk: tag(2),
                    ok: false,
                },
            ),
            &mut fab,
        );
        let out = drain(&mut fab);
        assert!(out
            .iter()
            .any(|e| matches!(e.msg, Message::CommitResp { ok: false, .. })));
        let releases: Vec<&Envelope> = out
            .iter()
            .filter(|e| matches!(e.msg, Message::ArbRelease { commit: false, .. }))
            .collect();
        assert_eq!(releases.len(), 2);
        assert_eq!(g.stats().denials, 1);
    }

    #[test]
    fn fast_w_denies_locally() {
        let mut g = GArbiter::new(5, 4);
        let mut fab = Fabric::new(FabricConfig { hop_latency: 1 });
        g.handle(
            0,
            env(
                NodeId::Core(0),
                Message::CommitReq {
                    chunk: tag(3),
                    w: sig(&[0, 1]),
                    r: Some(sig(&[])),
                },
            ),
            &mut fab,
        );
        drain(&mut fab);
        // Second multi-range commit touching line 1 collides with the
        // in-flight fast copy: denied with no fan-out.
        g.handle(
            5,
            env(
                NodeId::Core(1),
                Message::CommitReq {
                    chunk: ChunkTag { core: 1, seq: 1 },
                    w: sig(&[1, 2]),
                    r: Some(sig(&[])),
                },
            ),
            &mut fab,
        );
        let out = drain(&mut fab);
        assert!(matches!(out[0].msg, Message::CommitResp { ok: false, .. }));
        assert!(!out
            .iter()
            .any(|e| matches!(e.msg, Message::ArbCheck { .. })));
        assert_eq!(g.stats().fast_denials, 1);
    }

    #[test]
    fn arbiters_of_unions_ranges() {
        let w = sig(&[0, 4]); // ranges 0, 0 with 4 arbiters => {0}
        let r = sig(&[3]); // range 3
        assert_eq!(GArbiter::arbiters_of(&w, &r, 4), vec![0, 3]);
    }
}
