//! The commit arbiter (paper §4.2).
//!
//! The arbiter enforces the minimum serialization chunk commit needs: it
//! keeps the W signatures of all currently-committing chunks and grants a
//! permission-to-commit request only if the chunk's R and W signatures are
//! disjoint from every W in the list. Granted W signatures are forwarded
//! to the relevant directories; when every directory reports its
//! invalidations complete, the W leaves the list.
//!
//! The same component serves as a *range arbiter* in the distributed
//! design of §4.2.3: the G-arbiter sends it `ArbCheck`/`ArbRelease`
//! messages for multi-range commits, while single-range commits still
//! arrive as ordinary `CommitReq`s.
//!
//! Implemented here as well:
//!
//! * the **RSig optimization** (§4.2.2): requests carry only W; the R
//!   signature is demanded only when the W list is non-empty;
//! * **pre-arbitration** (§3.3): a starving processor asks for permission
//!   to execute, and the arbiter rejects other commit requests until that
//!   processor's own commit request arrives.

use std::collections::HashMap;

use bulksc_metrics as metrics;
use bulksc_net::{ChunkTag, Cycle, Envelope, Fabric, Message, NodeId};
use bulksc_sig::TrackedSig;
use bulksc_stats::{Histogram, TimeWeighted};
use bulksc_trace::{ConflictAttr, Event, TraceHandle};

/// Arbiter event counters (Table 4's arbiter columns).
#[derive(Clone, Debug, Default)]
pub struct ArbStats {
    /// Permission-to-commit requests received (first contact only, not
    /// RSig follow-ups).
    pub requests: u64,
    /// Requests granted.
    pub grants: u64,
    /// Requests denied (collision with a committing W, or pre-arbitration
    /// lockout).
    pub denials: u64,
    /// Grants whose W signature was empty (private-only chunks, §5).
    pub empty_w_grants: u64,
    /// Requests that needed the R signature fetched (RSig optimization
    /// fallback).
    pub rsig_required: u64,
    /// Time-weighted occupancy of the W list.
    pub pending_w: TimeWeighted,
    /// Pre-arbitration grants issued.
    pub prearbs: u64,
    /// Directory-update latency of granted commits: grant issued to the
    /// last DirDone (the W signature's time in the list).
    pub dir_update_latency: Histogram,
}

#[derive(Debug)]
struct CommitTrack {
    dirs_left: u32,
    /// Where the final completion/done notification goes: the core for
    /// ordinary commits, the G-arbiter for multi-range commits.
    report_to: NodeId,
    /// Cycle the commit was granted (or, for range commits, released),
    /// for the directory-update latency histogram.
    granted_at: Cycle,
}

#[derive(Debug)]
struct WaitingRsig {
    w: Box<TrackedSig>,
}

/// A commit arbiter module.
#[derive(Debug)]
pub struct Arbiter {
    id: NodeId,
    /// Extra latency of an arbitration decision.
    arb_latency: Cycle,
    /// Directories this arbiter forwards W signatures to.
    my_dirs: Vec<u32>,
    /// Total directories in the machine (for δ-routing of signatures).
    num_dirs: u32,
    /// W signatures of currently-committing chunks.
    w_list: Vec<(ChunkTag, TrackedSig)>,
    /// In-flight granted commits awaiting directory completion.
    commits: HashMap<ChunkTag, CommitTrack>,
    /// Requests parked while their R signature is fetched.
    waiting_rsig: HashMap<ChunkTag, WaitingRsig>,
    /// Pre-arbitration: the core currently holding execute permission.
    prearb: Option<u32>,
    /// Cores queued for pre-arbitration.
    prearb_queue: Vec<u32>,
    /// Conflict-attribution forensics: denials name the colliding
    /// committing chunk and its witness lines (off by default).
    xray: bool,
    stats: ArbStats,
    trace: TraceHandle,
}

impl Arbiter {
    /// An arbiter answering as `id`, forwarding W signatures to `my_dirs`
    /// out of `num_dirs` total directory modules.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not [`NodeId::Arbiter`].
    pub fn new(id: NodeId, arb_latency: Cycle, my_dirs: Vec<u32>, num_dirs: u32) -> Self {
        assert!(
            matches!(id, NodeId::Arbiter(_)),
            "arbiter id must be NodeId::Arbiter"
        );
        Arbiter {
            id,
            arb_latency,
            my_dirs,
            num_dirs,
            w_list: Vec::new(),
            commits: HashMap::new(),
            waiting_rsig: HashMap::new(),
            prearb: None,
            prearb_queue: Vec::new(),
            xray: false,
            stats: ArbStats::default(),
            trace: TraceHandle::off(),
        }
    }

    /// Route this arbiter's grant/deny events to `trace`'s sinks.
    pub fn set_tracer(&mut self, trace: TraceHandle) {
        self.trace = trace;
    }

    /// Enable conflict-attribution forensics on deny events.
    pub fn set_xray(&mut self, on: bool) {
        self.xray = on;
    }

    /// This module's network id.
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// Event counters.
    pub fn stats(&self) -> &ArbStats {
        &self.stats
    }

    /// Close the statistics window at simulation end.
    pub fn finish_stats(&mut self, end: Cycle) {
        self.stats.pending_w.finish(end);
    }

    /// Number of W signatures currently in the list.
    pub fn pending(&self) -> usize {
        self.w_list.len()
    }

    /// Requests queued but not yet decided: parked RSig fetches plus the
    /// pre-arbitration queue (an interval-sampler gauge).
    pub fn queue_depth(&self) -> usize {
        self.waiting_rsig.len() + self.prearb_queue.len()
    }

    fn note_occupancy(&mut self, now: Cycle) {
        self.stats.pending_w.set(now, self.w_list.len() as f64);
        metrics::gauge_peak(metrics::Gauge::ArbPendingWPeak, self.w_list.len() as u64);
    }

    /// True if `w`/`r` collide with any currently-committing W signature.
    fn collides(&self, w: &TrackedSig, r: Option<&TrackedSig>) -> bool {
        self.first_collider(w, r).is_some()
    }

    /// The first committing W-list entry colliding with `w`/`r` — the
    /// aggressor an xray denial is attributed to.
    fn first_collider(
        &self,
        w: &TrackedSig,
        r: Option<&TrackedSig>,
    ) -> Option<&(ChunkTag, TrackedSig)> {
        self.w_list.iter().find(|(_, committing)| {
            committing.intersects(w) || r.map(|r| committing.intersects(r)).unwrap_or(false)
        })
    }

    /// Attribution payload for a collision denial: the first colliding
    /// committing chunk plus the exact-shadow lines it shares with the
    /// denied request. `None` when xray is off or nothing collides.
    fn deny_attr(&self, w: &TrackedSig, r: Option<&TrackedSig>) -> Option<ConflictAttr> {
        if !self.xray {
            return None;
        }
        const CAP: usize = bulksc_trace::XRAY_WITNESS_CAP;
        let (tag, committing) = self.first_collider(w, r)?;
        let mut witnesses: Vec<u64> = committing
            .exact_witnesses(w, CAP)
            .iter()
            .map(|l| l.0)
            .collect();
        if let Some(r) = r {
            witnesses.extend(committing.exact_witnesses(r, CAP).iter().map(|l| l.0));
        }
        witnesses.sort_unstable();
        witnesses.dedup();
        witnesses.truncate(CAP);
        Some(ConflictAttr {
            agg_core: Some(tag.core),
            agg_seq: Some(tag.seq),
            site: "arb",
            witnesses,
        })
    }

    /// Process one incoming message.
    ///
    /// # Panics
    ///
    /// Panics on messages an arbiter can never receive.
    pub fn handle(&mut self, now: Cycle, env: Envelope, fab: &mut Fabric) {
        let _prof = bulksc_prof::scope(bulksc_prof::Phase::Arbiter);
        match env.msg {
            Message::CommitReq { chunk, w, r } => self.commit_req(now, env.src, chunk, w, r, fab),
            Message::RSigResp { chunk, r } => self.rsig_resp(now, env.src, chunk, r, fab),
            Message::DirDone { chunk } => self.dir_done(now, chunk, fab),
            Message::PreArbReq => self.prearb_req(now, env.src, fab),
            Message::ArbCheck { chunk, w, r } => self.arb_check(now, env.src, chunk, w, r, fab),
            Message::ArbRelease { chunk, commit } => {
                self.arb_release(now, env.src, chunk, commit, fab)
            }
            other => panic!("arbiter received unexpected message {other:?}"),
        }
    }

    fn core_index(src: NodeId) -> u32 {
        match src {
            NodeId::Core(c) => c,
            other => panic!("expected a core, got {other:?}"),
        }
    }

    fn commit_req(
        &mut self,
        now: Cycle,
        src: NodeId,
        chunk: ChunkTag,
        w: Box<TrackedSig>,
        r: Option<Box<TrackedSig>>,
        fab: &mut Fabric,
    ) {
        let core = Self::core_index(src);
        self.stats.requests += 1;
        metrics::inc(metrics::Counter::ArbRequests);

        // Pre-arbitration: the starved core's own request ends the episode.
        if self.prearb == Some(core) {
            self.prearb = None;
            if let Some(next) = self.prearb_queue.first().copied() {
                self.prearb_queue.remove(0);
                self.grant_prearb(now, next, fab);
            }
        } else if self.prearb.is_some() {
            self.stats.denials += 1;
            metrics::inc(metrics::Counter::ArbDenials);
            // A pre-arbitration lockout has no colliding signature: the
            // aggressor is the starved core holding execute permission.
            let attr = self.xray.then(|| ConflictAttr {
                agg_core: self.prearb,
                agg_seq: None,
                site: "prearb",
                witnesses: Vec::new(),
            });
            self.trace.emit(now, || Event::CommitDeny {
                core: chunk.core,
                seq: chunk.seq,
                xray: attr.map(Box::new),
            });
            fab.send_delayed(
                now,
                self.arb_latency,
                self.id,
                src,
                Message::CommitResp { chunk, ok: false },
            );
            return;
        }

        if self.w_list.is_empty() {
            // Fast path (enables the RSig optimization): nothing to check
            // against, grant immediately.
            self.grant(now, core, chunk, *w, fab);
            return;
        }
        let Some(r) = r else {
            // RSig optimization fallback: the list is non-empty and the R
            // signature was omitted; fetch it.
            self.stats.rsig_required += 1;
            self.waiting_rsig.insert(chunk, WaitingRsig { w });
            fab.send_delayed(
                now,
                self.arb_latency,
                self.id,
                src,
                Message::RSigReq { chunk },
            );
            return;
        };
        self.decide(now, core, chunk, *w, &r, fab);
    }

    fn rsig_resp(
        &mut self,
        now: Cycle,
        src: NodeId,
        chunk: ChunkTag,
        r: Box<TrackedSig>,
        fab: &mut Fabric,
    ) {
        let core = Self::core_index(src);
        let Some(parked) = self.waiting_rsig.remove(&chunk) else {
            return; // core retried in the meantime; stale response
        };
        if self.w_list.is_empty() {
            self.grant(now, core, chunk, *parked.w, fab);
        } else {
            self.decide(now, core, chunk, *parked.w, &r, fab);
        }
    }

    fn decide(
        &mut self,
        now: Cycle,
        core: u32,
        chunk: ChunkTag,
        w: TrackedSig,
        r: &TrackedSig,
        fab: &mut Fabric,
    ) {
        if self.collides(&w, Some(r)) {
            self.stats.denials += 1;
            metrics::inc(metrics::Counter::ArbDenials);
            let attr = self.deny_attr(&w, Some(r));
            self.trace.emit(now, || Event::CommitDeny {
                core: chunk.core,
                seq: chunk.seq,
                xray: attr.map(Box::new),
            });
            fab.send_delayed(
                now,
                self.arb_latency,
                self.id,
                NodeId::Core(core),
                Message::CommitResp { chunk, ok: false },
            );
        } else {
            self.grant(now, core, chunk, w, fab);
        }
    }

    /// Grant the commit: reply, forward W to the relevant directories,
    /// and track completion.
    fn grant(&mut self, now: Cycle, core: u32, chunk: ChunkTag, w: TrackedSig, fab: &mut Fabric) {
        self.stats.grants += 1;
        metrics::inc(metrics::Counter::ArbGrants);
        self.trace.emit(now, || Event::CommitGrant {
            core: chunk.core,
            seq: chunk.seq,
        });
        fab.send_delayed(
            now,
            self.arb_latency,
            self.id,
            NodeId::Core(core),
            Message::CommitResp { chunk, ok: true },
        );
        let dirs = self.target_dirs(&w);
        if w.is_empty() {
            self.stats.empty_w_grants += 1;
        }
        if w.is_empty() || dirs.is_empty() {
            // Nothing to invalidate anywhere: complete immediately. An
            // empty W never enters the list (§5), which is what keeps the
            // list empty most of the time.
            fab.send_delayed(
                now,
                self.arb_latency,
                self.id,
                NodeId::Core(core),
                Message::CommitComplete { chunk },
            );
            return;
        }
        self.w_list.push((chunk, w.clone()));
        self.note_occupancy(now);
        self.commits.insert(
            chunk,
            CommitTrack {
                dirs_left: dirs.len() as u32,
                report_to: NodeId::Core(core),
                granted_at: now,
            },
        );
        for d in dirs {
            fab.send_delayed(
                now,
                self.arb_latency,
                self.id,
                NodeId::Dir(d),
                Message::WSigToDir {
                    chunk,
                    w: Box::new(w.clone()),
                },
            );
        }
    }

    /// The directories (among this arbiter's) whose address slices may
    /// contain lines of `w`, by δ-decoding the signature.
    fn target_dirs(&self, w: &TrackedSig) -> Vec<u32> {
        if w.is_empty() {
            return Vec::new();
        }
        if self.num_dirs == 1 {
            return self.my_dirs.clone();
        }
        w.decode_sets(self.num_dirs)
            .into_iter()
            .filter(|d| self.my_dirs.contains(d))
            .collect()
    }

    fn dir_done(&mut self, now: Cycle, chunk: ChunkTag, fab: &mut Fabric) {
        let Some(track) = self.commits.get_mut(&chunk) else {
            return;
        };
        track.dirs_left -= 1;
        if track.dirs_left > 0 {
            return;
        }
        let track = self.commits.remove(&chunk).expect("checked above");
        self.stats
            .dir_update_latency
            .record(now.saturating_sub(track.granted_at));
        self.w_list.retain(|(t, _)| *t != chunk);
        self.note_occupancy(now);
        let msg = match track.report_to {
            NodeId::GArbiter => Message::ArbDone { chunk },
            _ => Message::CommitComplete { chunk },
        };
        fab.send(now, self.id, track.report_to, msg);
    }

    fn prearb_req(&mut self, now: Cycle, src: NodeId, fab: &mut Fabric) {
        let core = Self::core_index(src);
        if self.prearb.is_none() {
            self.grant_prearb(now, core, fab);
        } else if self.prearb != Some(core) && !self.prearb_queue.contains(&core) {
            self.prearb_queue.push(core);
        }
    }

    fn grant_prearb(&mut self, now: Cycle, core: u32, fab: &mut Fabric) {
        self.prearb = Some(core);
        self.stats.prearbs += 1;
        fab.send_delayed(
            now,
            self.arb_latency,
            self.id,
            NodeId::Core(core),
            Message::PreArbGrant,
        );
    }

    // ------------------------------------------------------------------
    // Range-arbiter duties for the distributed design (§4.2.3).
    // ------------------------------------------------------------------

    fn arb_check(
        &mut self,
        now: Cycle,
        src: NodeId,
        chunk: ChunkTag,
        w: Box<TrackedSig>,
        r: Option<Box<TrackedSig>>,
        fab: &mut Fabric,
    ) {
        let ok = !self.collides(&w, r.as_deref());
        if ok && !w.is_empty() {
            // Reserve: the W joins the list so overlapping requests at
            // this arbiter are denied while the G-arbiter coordinates.
            self.w_list.push((chunk, *w));
            self.note_occupancy(now);
        }
        fab.send_delayed(
            now,
            self.arb_latency,
            self.id,
            src,
            Message::ArbCheckResp { chunk, ok },
        );
    }

    fn arb_release(
        &mut self,
        now: Cycle,
        src: NodeId,
        chunk: ChunkTag,
        commit: bool,
        fab: &mut Fabric,
    ) {
        if !commit {
            self.w_list.retain(|(t, _)| *t != chunk);
            self.note_occupancy(now);
            return;
        }
        // Proceed: forward the reserved W to this arbiter's directories.
        let Some((_, w)) = self.w_list.iter().find(|(t, _)| *t == chunk).cloned() else {
            // Reservation carried an empty W: nothing to forward here.
            fab.send(now, self.id, src, Message::ArbDone { chunk });
            return;
        };
        let dirs = self.target_dirs(&w);
        if dirs.is_empty() {
            self.w_list.retain(|(t, _)| *t != chunk);
            self.note_occupancy(now);
            fab.send(now, self.id, src, Message::ArbDone { chunk });
            return;
        }
        self.commits.insert(
            chunk,
            CommitTrack {
                dirs_left: dirs.len() as u32,
                report_to: src,
                granted_at: now,
            },
        );
        for d in dirs {
            fab.send(
                now,
                self.id,
                NodeId::Dir(d),
                Message::WSigToDir {
                    chunk,
                    w: Box::new(w.clone()),
                },
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bulksc_net::FabricConfig;
    use bulksc_sig::{LineAddr, SigMode, SignatureConfig};

    fn sig(lines: &[u64]) -> Box<TrackedSig> {
        let mut s = TrackedSig::new(&SignatureConfig::default(), SigMode::Bloom);
        for &l in lines {
            s.insert(LineAddr(l));
        }
        Box::new(s)
    }

    fn setup() -> (Arbiter, Fabric) {
        (
            Arbiter::new(NodeId::Arbiter(0), 10, vec![0], 1),
            Fabric::new(FabricConfig { hop_latency: 1 }),
        )
    }

    fn env(src: NodeId, msg: Message) -> Envelope {
        Envelope {
            src,
            dst: NodeId::Arbiter(0),
            msg,
        }
    }

    fn drain(fab: &mut Fabric) -> Vec<Envelope> {
        fab.deliver_due(u64::MAX / 2)
    }

    fn tag(core: u32, seq: u64) -> ChunkTag {
        ChunkTag { core, seq }
    }

    #[test]
    fn empty_list_grants_without_r() {
        let (mut a, mut fab) = setup();
        a.handle(
            0,
            env(
                NodeId::Core(0),
                Message::CommitReq {
                    chunk: tag(0, 1),
                    w: sig(&[1]),
                    r: None,
                },
            ),
            &mut fab,
        );
        let out = drain(&mut fab);
        assert!(matches!(out[0].msg, Message::CommitResp { ok: true, .. }));
        // W forwarded to the directory.
        assert!(out
            .iter()
            .any(|e| matches!(e.msg, Message::WSigToDir { .. })));
        assert_eq!(a.pending(), 1);
        assert_eq!(a.stats().rsig_required, 0);
    }

    #[test]
    fn empty_w_completes_immediately_and_skips_list() {
        let (mut a, mut fab) = setup();
        a.handle(
            0,
            env(
                NodeId::Core(2),
                Message::CommitReq {
                    chunk: tag(2, 1),
                    w: sig(&[]),
                    r: None,
                },
            ),
            &mut fab,
        );
        let out = drain(&mut fab);
        assert!(matches!(out[0].msg, Message::CommitResp { ok: true, .. }));
        assert!(out
            .iter()
            .any(|e| matches!(e.msg, Message::CommitComplete { .. })));
        assert_eq!(a.pending(), 0);
        assert_eq!(a.stats().empty_w_grants, 1);
    }

    #[test]
    fn nonempty_list_demands_rsig_then_decides() {
        let (mut a, mut fab) = setup();
        // First chunk holds the list.
        a.handle(
            0,
            env(
                NodeId::Core(0),
                Message::CommitReq {
                    chunk: tag(0, 1),
                    w: sig(&[1]),
                    r: None,
                },
            ),
            &mut fab,
        );
        drain(&mut fab);
        // Second chunk: W disjoint, R must be demanded.
        a.handle(
            10,
            env(
                NodeId::Core(1),
                Message::CommitReq {
                    chunk: tag(1, 1),
                    w: sig(&[50]),
                    r: None,
                },
            ),
            &mut fab,
        );
        let out = drain(&mut fab);
        assert!(matches!(out[0].msg, Message::RSigReq { .. }));
        assert_eq!(a.stats().rsig_required, 1);
        // R arrives, disjoint => grant (overlapping commits of disjoint
        // write sets are allowed, §3.2.2).
        a.handle(
            20,
            env(
                NodeId::Core(1),
                Message::RSigResp {
                    chunk: tag(1, 1),
                    r: sig(&[60]),
                },
            ),
            &mut fab,
        );
        let out = drain(&mut fab);
        assert!(matches!(out[0].msg, Message::CommitResp { ok: true, .. }));
        assert_eq!(a.pending(), 2);
    }

    #[test]
    fn colliding_r_is_denied() {
        let (mut a, mut fab) = setup();
        a.handle(
            0,
            env(
                NodeId::Core(0),
                Message::CommitReq {
                    chunk: tag(0, 1),
                    w: sig(&[1]),
                    r: None,
                },
            ),
            &mut fab,
        );
        drain(&mut fab);
        // Second chunk read line 1, which is being committed: deny (this
        // is the Figure 4(b) corner-case rule).
        a.handle(
            10,
            env(
                NodeId::Core(1),
                Message::CommitReq {
                    chunk: tag(1, 1),
                    w: sig(&[]),
                    r: Some(sig(&[1])),
                },
            ),
            &mut fab,
        );
        let out = drain(&mut fab);
        assert!(matches!(out[0].msg, Message::CommitResp { ok: false, .. }));
        assert_eq!(a.stats().denials, 1);
    }

    #[test]
    fn colliding_w_is_denied() {
        let (mut a, mut fab) = setup();
        a.handle(
            0,
            env(
                NodeId::Core(0),
                Message::CommitReq {
                    chunk: tag(0, 1),
                    w: sig(&[1]),
                    r: None,
                },
            ),
            &mut fab,
        );
        drain(&mut fab);
        a.handle(
            10,
            env(
                NodeId::Core(1),
                Message::CommitReq {
                    chunk: tag(1, 1),
                    w: sig(&[1]),
                    r: Some(sig(&[])),
                },
            ),
            &mut fab,
        );
        let out = drain(&mut fab);
        assert!(matches!(out[0].msg, Message::CommitResp { ok: false, .. }));
    }

    #[test]
    fn dir_done_releases_w_and_completes() {
        let (mut a, mut fab) = setup();
        a.handle(
            0,
            env(
                NodeId::Core(0),
                Message::CommitReq {
                    chunk: tag(0, 1),
                    w: sig(&[1]),
                    r: None,
                },
            ),
            &mut fab,
        );
        drain(&mut fab);
        assert_eq!(a.pending(), 1);
        a.handle(
            20,
            env(NodeId::Dir(0), Message::DirDone { chunk: tag(0, 1) }),
            &mut fab,
        );
        let out = drain(&mut fab);
        assert!(matches!(out[0].msg, Message::CommitComplete { .. }));
        assert_eq!(out[0].dst, NodeId::Core(0));
        assert_eq!(a.pending(), 0);
    }

    #[test]
    fn prearbitration_locks_out_other_commits() {
        let (mut a, mut fab) = setup();
        a.handle(0, env(NodeId::Core(3), Message::PreArbReq), &mut fab);
        let out = drain(&mut fab);
        assert!(matches!(out[0].msg, Message::PreArbGrant));
        assert_eq!(out[0].dst, NodeId::Core(3));
        // Another core's commit is denied while core 3 holds permission.
        a.handle(
            10,
            env(
                NodeId::Core(0),
                Message::CommitReq {
                    chunk: tag(0, 9),
                    w: sig(&[]),
                    r: None,
                },
            ),
            &mut fab,
        );
        let out = drain(&mut fab);
        assert!(matches!(out[0].msg, Message::CommitResp { ok: false, .. }));
        // Core 3's own commit ends the episode and is processed normally.
        a.handle(
            20,
            env(
                NodeId::Core(3),
                Message::CommitReq {
                    chunk: tag(3, 1),
                    w: sig(&[]),
                    r: None,
                },
            ),
            &mut fab,
        );
        let out = drain(&mut fab);
        assert!(matches!(out[0].msg, Message::CommitResp { ok: true, .. }));
        // And other cores can commit again.
        a.handle(
            30,
            env(
                NodeId::Core(0),
                Message::CommitReq {
                    chunk: tag(0, 10),
                    w: sig(&[]),
                    r: None,
                },
            ),
            &mut fab,
        );
        let out = drain(&mut fab);
        assert!(matches!(out[0].msg, Message::CommitResp { ok: true, .. }));
    }

    #[test]
    fn prearb_queue_hands_over() {
        let (mut a, mut fab) = setup();
        a.handle(0, env(NodeId::Core(1), Message::PreArbReq), &mut fab);
        drain(&mut fab);
        a.handle(1, env(NodeId::Core(2), Message::PreArbReq), &mut fab);
        assert!(drain(&mut fab).is_empty(), "queued, not granted");
        a.handle(
            10,
            env(
                NodeId::Core(1),
                Message::CommitReq {
                    chunk: tag(1, 1),
                    w: sig(&[]),
                    r: None,
                },
            ),
            &mut fab,
        );
        let out = drain(&mut fab);
        assert!(out
            .iter()
            .any(|e| matches!(e.msg, Message::PreArbGrant) && e.dst == NodeId::Core(2)));
    }

    #[test]
    fn range_arbiter_check_reserve_release() {
        let (mut a, mut fab) = setup();
        a.handle(
            0,
            env(
                NodeId::GArbiter,
                Message::ArbCheck {
                    chunk: tag(0, 1),
                    w: sig(&[1]),
                    r: Some(sig(&[2])),
                },
            ),
            &mut fab,
        );
        let out = drain(&mut fab);
        assert!(matches!(out[0].msg, Message::ArbCheckResp { ok: true, .. }));
        assert_eq!(a.pending(), 1, "reservation holds the W");
        // A conflicting direct request is denied while reserved.
        a.handle(
            5,
            env(
                NodeId::Core(2),
                Message::CommitReq {
                    chunk: tag(2, 1),
                    w: sig(&[1]),
                    r: Some(sig(&[])),
                },
            ),
            &mut fab,
        );
        let out = drain(&mut fab);
        assert!(matches!(out[0].msg, Message::CommitResp { ok: false, .. }));
        // Abandon the reservation.
        a.handle(
            10,
            env(
                NodeId::GArbiter,
                Message::ArbRelease {
                    chunk: tag(0, 1),
                    commit: false,
                },
            ),
            &mut fab,
        );
        assert_eq!(a.pending(), 0);
    }

    #[test]
    fn range_arbiter_commit_forwards_and_reports_arbdone() {
        let (mut a, mut fab) = setup();
        a.handle(
            0,
            env(
                NodeId::GArbiter,
                Message::ArbCheck {
                    chunk: tag(0, 1),
                    w: sig(&[1]),
                    r: None,
                },
            ),
            &mut fab,
        );
        drain(&mut fab);
        a.handle(
            10,
            env(
                NodeId::GArbiter,
                Message::ArbRelease {
                    chunk: tag(0, 1),
                    commit: true,
                },
            ),
            &mut fab,
        );
        let out = drain(&mut fab);
        assert!(out
            .iter()
            .any(|e| matches!(e.msg, Message::WSigToDir { .. })));
        a.handle(
            20,
            env(NodeId::Dir(0), Message::DirDone { chunk: tag(0, 1) }),
            &mut fab,
        );
        let out = drain(&mut fab);
        assert!(matches!(out[0].msg, Message::ArbDone { .. }));
        assert_eq!(out[0].dst, NodeId::GArbiter);
        assert_eq!(a.pending(), 0);
    }

    #[test]
    fn xray_denial_names_the_aggressor_and_witness_lines() {
        let (mut a, mut fab) = setup();
        a.set_xray(true);
        let jsonl = bulksc_trace::JsonlTracer::shared();
        let mut trace = TraceHandle::off();
        trace.attach(jsonl.clone());
        a.set_tracer(trace);
        a.handle(
            0,
            env(
                NodeId::Core(0),
                Message::CommitReq {
                    chunk: tag(0, 7),
                    w: sig(&[1, 2]),
                    r: None,
                },
            ),
            &mut fab,
        );
        drain(&mut fab);
        // Core 1 wrote line 2 and read line 1: both witness the conflict
        // with core 0's committing chunk.
        a.handle(
            10,
            env(
                NodeId::Core(1),
                Message::CommitReq {
                    chunk: tag(1, 3),
                    w: sig(&[2]),
                    r: Some(sig(&[1])),
                },
            ),
            &mut fab,
        );
        let out = drain(&mut fab);
        assert!(matches!(out[0].msg, Message::CommitResp { ok: false, .. }));
        let text = jsonl.borrow().contents().to_string();
        assert!(
            text.contains("\"agg_core\":0,\"agg_seq\":7,\"site\":\"arb\",\"witness\":[1,2]"),
            "deny event should carry attribution: {text}"
        );
    }

    #[test]
    fn occupancy_statistics() {
        let (mut a, mut fab) = setup();
        a.handle(
            0,
            env(
                NodeId::Core(0),
                Message::CommitReq {
                    chunk: tag(0, 1),
                    w: sig(&[1]),
                    r: None,
                },
            ),
            &mut fab,
        );
        drain(&mut fab);
        a.handle(
            100,
            env(NodeId::Dir(0), Message::DirDone { chunk: tag(0, 1) }),
            &mut fab,
        );
        a.finish_stats(200);
        assert!(a.stats().pending_w.nonzero_fraction() > 0.4);
        assert!(a.stats().pending_w.nonzero_fraction() < 0.6);
    }
}
