//! The BulkSC core: a checkpointed processor with a BDM, executing chunks
//! (paper §4.1).
//!
//! Execution model, following §4.1.1–§4.1.3:
//!
//! * The core *only* executes chunks, delimited at fetch time by
//!   instruction count (and by cache-set overflow and I/O). Opening a
//!   chunk takes a program checkpoint; squashing restores it.
//! * Memory accesses reorder and overlap freely inside and across chunks.
//!   Loads update the chunk's R signature when they enter the memory
//!   system (slightly earlier than the paper's fill-time update — a
//!   conservative choice that also closes the forwarding-lag vulnerability
//!   window of §3.2.1 by construction). Stores retire from the window head
//!   *wait-free* (§6): the value goes to the chunk's store buffer and the
//!   W signature; the line is demand-fetched in the background and only
//!   needs to have arrived by commit time.
//! * Every demand miss is a plain read request — a speculative writer can
//!   never be the registered owner (§4.3).
//! * Explicit synchronization (RMWs) executes inside chunks with no
//!   fences; chunk atomicity provides the atomicity (§3.3).
//! * Commits: the oldest chunk, once closed, fully retired, and with all
//!   its lines present, requests permission from its arbiter (W only under
//!   the RSig optimization); a grant makes its stores globally visible and
//!   frees the chunk slot; a denial retries. Incoming W signatures of
//!   other chunks' commits drive bulk disambiguation and bulk invalidation
//!   through the L1.
//! * Forward progress (§3.3): consecutive squashes first shrink the chunk
//!   exponentially, then fall back to pre-arbitration.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap, HashSet, VecDeque};

use bulksc_cpu::{CoreConfig, InstrWindow, Slot, SlotId, SlotState, ValueStore};
use bulksc_mem::{CacheConfig, InsertOutcome, LineState, SetAssocCache};
use bulksc_metrics as metrics;
use bulksc_net::{ChunkTag, Cycle, Envelope, Fabric, Message, NodeId};
use bulksc_sig::{Addr, LineAddr, TrackedSig};
use bulksc_stats::{CycleLoss, Histogram, RunningMean};
use bulksc_trace::{ConflictAttr, Event, SquashCause, TraceHandle};
use bulksc_workloads::{AddressMap, Instr, ThreadProgram};

use crate::chunk::{Chunk, ChunkState, PrivateBuffer};
use crate::config::{BulkConfig, PrivateMode};
use crate::garbiter::GArbiter;

/// Event counters for one BulkSC core (feeding Tables 3 and 4).
#[derive(Clone, Debug, Default)]
pub struct BulkStats {
    /// Dynamic instructions committed (squashed work subtracted).
    pub retired: u64,
    /// Chunks committed.
    pub chunks_committed: u64,
    /// Chunk squashes.
    pub squashes: u64,
    /// Squashes an alias-free signature would have avoided.
    pub alias_squashes: u64,
    /// Squashes from true data collisions.
    pub true_squashes: u64,
    /// Squashes forced by cache-set overflow.
    pub overflow_squashes: u64,
    /// Dynamic instructions discarded by squashes.
    pub squashed_instrs: u64,
    /// Committed chunks whose W signature was empty.
    pub empty_w_commits: u64,
    /// Commit requests denied by the arbiter.
    pub commit_denials: u64,
    /// R signature demanded by the arbiter (RSig fallback).
    pub rsig_sent: u64,
    /// Average read-set size of committed chunks (lines).
    pub read_set: RunningMean,
    /// Average write-set size of committed chunks (lines).
    pub write_set: RunningMean,
    /// Average private-write-set size of committed chunks (lines).
    pub priv_write_set: RunningMean,
    /// Speculatively-read lines displaced from the L1 (harmless, Table 3).
    pub read_set_displacements: u64,
    /// Old versions supplied from the Private Buffer (Table 3).
    pub priv_buffer_supplies: u64,
    /// Lines invalidated by incoming W signatures.
    pub cache_invs: u64,
    /// Invalidations caused purely by signature aliasing (Table 3).
    pub extra_cache_invs: u64,
    /// L1 hits.
    pub l1_hits: u64,
    /// L1 misses.
    pub l1_misses: u64,
    /// Nacks received on demand reads.
    pub nacks: u64,
    /// Pre-arbitration episodes entered.
    pub prearbs: u64,
    /// I/O operations serialized.
    pub io_ops: u64,
    /// Cycle the program (and all its chunks) finished.
    pub finished_at: Option<Cycle>,
    /// Execute-phase latency of committed chunks: chunk open to first
    /// commit-permission request.
    pub lat_execute: Histogram,
    /// Arbitration latency of committed chunks: first commit request to
    /// grant, retries included.
    pub lat_arbitration: Histogram,
    /// Commit-visibility latency: grant received to CommitComplete
    /// received (the directory round trip as seen by the core).
    pub lat_commit_visible: Histogram,
    /// L1 miss latency: request sent to fill received.
    pub lat_miss: Histogram,
    /// Where this core's cycles went: each interval between lifecycle
    /// events is charged to the event that ended it (commit grant, denial,
    /// squash by cause). The end-of-run remainder is added as "tail" by
    /// `SimReport::collect`, making the total exactly the run's cycles.
    pub loss: CycleLoss,
}

#[derive(Clone, Copy, Debug)]
enum WindowForward {
    /// No older in-window store to this word.
    None,
    /// Forward this value.
    Value(u64),
    /// An older RMW has not performed yet; the value is unknown.
    Unknown,
}

#[derive(Debug)]
struct MissEntry {
    sent: bool,
    /// Cycle the request actually went out (for miss-latency accounting).
    sent_at: Cycle,
    retry_at: Cycle,
    waiting_loads: Vec<SlotId>,
    invalidated: bool,
}

/// A BulkSC core node: processor + checkpointing + BDM + private L1.
pub struct BulkNode {
    core: u32,
    cfg: CoreConfig,
    bulk: BulkConfig,
    num_dirs: u32,
    map: AddressMap,

    program: Box<dyn ThreadProgram>,
    program_done: bool,
    budget: u64,

    window: InstrWindow,
    awaiting: Option<SlotId>,
    feed: Option<u64>,
    stash: Option<Instr>,
    slot_chunks: HashMap<SlotId, u64>,

    l1: SetAssocCache,
    misses: HashMap<LineAddr, MissEntry>,
    completions: BinaryHeap<Reverse<(Cycle, SlotId)>>,
    pending_fetches: HashMap<LineAddr, (NodeId, bool)>,
    deferred_fetches: Vec<(Cycle, LineAddr, NodeId, bool)>,

    /// Active chunks, oldest first; the back one may be open.
    chunks: VecDeque<Chunk>,
    next_seq: u64,
    /// Dynamic instructions fetched into the open chunk.
    fetched_into_chunk: u64,
    /// Granted chunks whose commit protocol is still completing, with the
    /// cycle the grant arrived (for commit-visibility latency).
    committing: HashMap<ChunkTag, Cycle>,
    /// Completions that raced ahead of their own grant response (the
    /// whole directory round can be faster than the delayed CommitResp),
    /// with the cycle the completion arrived.
    early_completes: HashMap<ChunkTag, Cycle>,
    /// Earliest cycle the oldest chunk may (re)request commit.
    commit_retry_at: Cycle,
    /// Cycle-loss partition marker: start of the interval not yet charged
    /// to any cause in `stats.loss`.
    loss_mark: Cycle,
    /// Consecutive squashes (for §3.3's backoff and pre-arbitration).
    consec_squashes: u32,
    effective_chunk_size: u64,
    prearb_waiting: bool,
    prearb_granted: bool,

    priv_buffer: PrivateBuffer,
    stats: BulkStats,
    trace: TraceHandle,
    /// Program-order index of the next value-traced access (only advanced
    /// while a tracer is attached). Re-executions after a squash get fresh,
    /// larger indices; since chunks commit in order, the committed trace is
    /// still monotone in program order per core.
    po_next: u64,
}

impl BulkNode {
    /// A BulkSC core for `core`, running `program` for `budget` useful
    /// dynamic instructions, on a machine with `num_dirs` directories and
    /// the layout `map` (used by the statically-private page attribute).
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        core: u32,
        cfg: CoreConfig,
        bulk: BulkConfig,
        l1: CacheConfig,
        program: Box<dyn ThreadProgram>,
        budget: u64,
        num_dirs: u32,
        map: AddressMap,
    ) -> Self {
        let priv_cap = bulk.private_buffer;
        let chunk_size = bulk.chunk_size;
        let mut node = BulkNode {
            core,
            cfg,
            bulk,
            num_dirs,
            map,
            program,
            program_done: false,
            budget,
            window: InstrWindow::new(cfg.window_size),
            awaiting: None,
            feed: None,
            stash: None,
            slot_chunks: HashMap::new(),
            l1: SetAssocCache::new(l1),
            misses: HashMap::new(),
            completions: BinaryHeap::new(),
            pending_fetches: HashMap::new(),
            deferred_fetches: Vec::new(),
            chunks: VecDeque::new(),
            next_seq: 0,
            fetched_into_chunk: 0,
            committing: HashMap::new(),
            early_completes: HashMap::new(),
            loss_mark: 0,
            commit_retry_at: 0,
            consec_squashes: 0,
            effective_chunk_size: chunk_size,
            prearb_waiting: false,
            prearb_granted: false,
            priv_buffer: PrivateBuffer::new(priv_cap),
            stats: BulkStats::default(),
            trace: TraceHandle::off(),
            po_next: 0,
        };
        node.open_chunk(0);
        node
    }

    /// Route this core's chunk-lifecycle events to `trace`'s sinks.
    pub fn set_tracer(&mut self, trace: TraceHandle) {
        self.trace = trace;
    }

    /// This node's network id.
    pub fn id(&self) -> NodeId {
        NodeId::Core(self.core)
    }

    /// Event counters.
    pub fn stats(&self) -> &BulkStats {
        &self.stats
    }

    /// The thread program (for observations after a run).
    pub fn program(&self) -> &dyn ThreadProgram {
        self.program.as_ref()
    }

    /// True once the program has ended and every chunk has committed.
    pub fn finished(&self) -> bool {
        self.stats.finished_at.is_some()
    }

    /// Active (undecided) chunks right now.
    pub fn active_chunks(&self) -> usize {
        self.chunks.len()
    }

    /// True while the core is recovering from squashes (§3.3 back-off
    /// still in effect); an interval-sampler gauge.
    pub fn squashing(&self) -> bool {
        self.consec_squashes > 0
    }

    /// Charge the cycles since the last charged lifecycle event to
    /// `label` and restart the interval at `now`.
    fn charge_loss(&mut self, now: Cycle, label: &'static str) {
        self.stats
            .loss
            .charge(label, now.saturating_sub(self.loss_mark));
        self.loss_mark = now;
    }

    fn dir_node(&self, line: LineAddr) -> NodeId {
        NodeId::Dir((line.0 % self.num_dirs as u64) as u32)
    }

    fn open_chunk(&mut self, now: Cycle) {
        let tag = ChunkTag {
            core: self.core,
            seq: self.next_seq,
        };
        self.trace.emit(now, || Event::ChunkStart {
            core: tag.core,
            seq: tag.seq,
        });
        self.next_seq += 1;
        self.fetched_into_chunk = 0;
        let mut chunk = Chunk::new(
            tag,
            &self.bulk.sig,
            self.bulk.sig_mode,
            self.program.clone_box(),
        );
        // The checkpoint must capture everything the restored execution
        // needs: a value awaiting delivery and a fetched-but-unwindowed
        // instruction are architectural state too.
        chunk.checkpoint_feed = self.feed;
        chunk.checkpoint_stash = self.stash;
        chunk.t_start = now;
        self.chunks.push_back(chunk);
    }

    fn open_chunk_mut(&mut self) -> Option<&mut Chunk> {
        self.chunks
            .back_mut()
            .filter(|c| c.state == ChunkState::Open)
    }

    fn chunk_of_slot(&mut self, id: SlotId) -> Option<&mut Chunk> {
        let seq = *self.slot_chunks.get(&id)?;
        self.chunks.iter_mut().find(|c| c.tag.seq == seq)
    }

    /// A window slot that in-flight pipeline state (a completion, a miss
    /// wakeup) still refers to. Losing it means the window and the
    /// bookkeeping maps disagree — panic with the core, cycle, and slot
    /// so a bad configuration produces a usable report instead of an
    /// anonymous `Option::unwrap`.
    fn slot_mut(&mut self, now: Cycle, slot: SlotId, ctx: &str) -> &mut Slot {
        let core = self.core;
        self.window.get_mut(slot).unwrap_or_else(|| {
            panic!("core {core}: cycle {now}: window slot {slot} is gone ({ctx})")
        })
    }

    /// The chunk sequence number a slot was fetched into. Every slot is
    /// tagged at fetch time; an untagged slot in the retire/issue path
    /// means chunk accounting was corrupted.
    fn chunk_seq_of(&self, now: Cycle, slot: SlotId, ctx: &str) -> u64 {
        *self.slot_chunks.get(&slot).unwrap_or_else(|| {
            panic!(
                "core {}: cycle {now}: slot {slot} has no chunk tag ({ctx})",
                self.core
            )
        })
    }

    /// True if `line` is speculatively written by any active chunk (the
    /// BDM's displacement veto and dirty-non-speculative test).
    fn spec_written(&self, line: LineAddr) -> bool {
        self.chunks
            .iter()
            .any(|c| c.w.contains_exact(line) || c.wpriv.contains_exact(line))
    }

    // ------------------------------------------------------------------
    // Per-cycle work.
    // ------------------------------------------------------------------

    /// Advance this core by one cycle.
    pub fn tick(&mut self, now: Cycle, fab: &mut Fabric, values: &mut ValueStore) {
        let _prof = bulksc_prof::scope(bulksc_prof::Phase::Execute);
        self.answer_deferred_fetches(now, fab);
        if self.finished() {
            return;
        }
        self.pop_completions(now, values);
        self.maybe_request_commit(now, fab, values);
        self.retire(now, values, fab);
        self.issue(now);
        self.send_pending_misses(now, fab);
        self.fetch(now, fab);
        self.check_finished(now);
    }

    fn pop_completions(&mut self, now: Cycle, values: &ValueStore) {
        while let Some(&Reverse((t, slot))) = self.completions.peek() {
            if t > now {
                break;
            }
            self.completions.pop();
            self.complete_load_slot(now, slot, values);
        }
    }

    /// The value a load must observe: the youngest speculative store of
    /// this core's active chunks, else committed memory.
    fn resolved_value(&self, addr: Addr, values: &ValueStore) -> u64 {
        for c in self.chunks.iter().rev() {
            if let Some(v) = c.forward(addr) {
                return v;
            }
        }
        values.read(addr)
    }

    fn complete_load_slot(&mut self, now: Cycle, slot: SlotId, values: &ValueStore) {
        let Some(s) = self.window.get_mut(slot) else {
            return;
        };
        if s.state != SlotState::Issued {
            return;
        }
        let Instr::Load { addr, .. } = s.instr else {
            s.state = SlotState::Done;
            return;
        };
        // Forward from older in-window stores first (they have not
        // reached the chunk store buffer yet), then from the chunk
        // buffers, then committed memory. An older unperformed RMW means
        // the value is not known yet: retry next cycle.
        match self.window_forward(slot, addr) {
            WindowForward::Value(v) => {
                let s = self.slot_mut(now, slot, "load completed by store forwarding");
                s.state = SlotState::Done;
                s.value = Some(v);
            }
            WindowForward::Unknown => {
                // Re-examine next cycle; the RMW performs at the head.
                self.completions.push(Reverse((now + 1, slot)));
            }
            WindowForward::None => {
                let v = self.resolved_value(addr, values);
                let s = self.slot_mut(now, slot, "load completed from memory");
                s.state = SlotState::Done;
                s.value = Some(v);
            }
        }
    }

    /// The youngest older same-word store/RMW still in the window.
    fn window_forward(&self, slot: SlotId, addr: Addr) -> WindowForward {
        let mut fwd = WindowForward::None;
        for s in self.window.iter() {
            if s.id >= slot {
                break;
            }
            match s.instr {
                Instr::Store { addr: a, value } if a == addr => {
                    fwd = WindowForward::Value(value);
                }
                Instr::Rmw { addr: a, .. } if a == addr => {
                    fwd = WindowForward::Unknown;
                }
                _ => {}
            }
        }
        fwd
    }

    fn retire(&mut self, now: Cycle, values: &mut ValueStore, fab: &mut Fabric) {
        let mut budget = self.cfg.retire_width;
        while budget > 0 {
            let Some(head) = self.window.oldest() else {
                break;
            };
            let head_id = head.id;
            let head_instr = head.instr;
            let head_state = head.state;
            let head_remaining = head.remaining;
            let head_value = head.value;
            match head_instr {
                Instr::Compute(_) => {
                    let n = budget.min(head_remaining);
                    self.window.drain_oldest_compute(n);
                    budget -= n;
                    self.note_retired(head_id, n as u64);
                    let core = self.core;
                    let drained = self.window.oldest().unwrap_or_else(|| {
                        panic!(
                            "core {core}: cycle {now}: head slot {head_id} vanished \
                             mid-drain of a compute burst"
                        )
                    });
                    if drained.remaining == 0 {
                        self.finish_slot(head_id);
                    }
                }
                Instr::Fence => {
                    // §3.3: no fences, no reordering constraints.
                    self.note_retired(head_id, 1);
                    self.finish_slot(head_id);
                    budget -= 1;
                }
                Instr::Load { addr, consume } => {
                    if head_state != SlotState::Done {
                        break;
                    }
                    let v = head_value;
                    if self.trace.enabled() {
                        let core = self.core;
                        let value = v.unwrap_or_else(|| {
                            panic!(
                                "core {core}: cycle {now}: load slot {head_id} at \
                                 {} retired Done but carries no value",
                                addr.line()
                            )
                        });
                        self.buffer_access(now, head_id, |seq, po| Event::ValLoad {
                            core,
                            seq,
                            po,
                            addr: addr.0,
                            value,
                            retired_at: now,
                        });
                    }
                    if consume {
                        self.feed = v;
                        self.awaiting = None;
                    }
                    self.note_retired(head_id, 1);
                    self.finish_slot(head_id);
                    budget -= 1;
                }
                Instr::Store { addr, value } => {
                    // Wait-free store retirement (§6).
                    if !self.perform_spec_store(now, head_id, addr, value, fab) {
                        break; // set-overflow self-squash happened
                    }
                    if self.trace.enabled() {
                        let core = self.core;
                        self.buffer_access(now, head_id, |seq, po| Event::ValStore {
                            core,
                            seq,
                            po,
                            addr: addr.0,
                            value,
                            retired_at: now,
                        });
                    }
                    self.note_retired(head_id, 1);
                    self.finish_slot(head_id);
                    budget -= 1;
                }
                Instr::Rmw { addr, op } => {
                    // Atomicity comes from the chunk (§3.3); the RMW just
                    // needs its line (or a forwarded value) to read.
                    let have_line = self.l1.contains(addr.line())
                        || self.chunks.iter().any(|c| c.forward(addr).is_some());
                    if !have_line {
                        self.want_line(now, head_id, addr.line(), None);
                        break;
                    }
                    let old = self.resolved_value(addr, values);
                    let new = op.apply(old);
                    if !self.perform_spec_store(now, head_id, addr, new, fab) {
                        break;
                    }
                    if self.trace.enabled() {
                        let core = self.core;
                        self.buffer_access(now, head_id, |seq, po| Event::ValRmw {
                            core,
                            seq,
                            po,
                            addr: addr.0,
                            old,
                            new,
                            retired_at: now,
                        });
                    }
                    self.feed = Some(old);
                    self.awaiting = None;
                    self.note_retired(head_id, 1);
                    self.finish_slot(head_id);
                    budget -= 1;
                }
                Instr::Io => {
                    // §4.1.3: stall until every older chunk has fully
                    // committed, perform, then a fresh chunk starts.
                    let own_seq = self.chunk_seq_of(now, head_id, "I/O retire");
                    let front_is_mine = self.chunks.front().map(|c| c.tag.seq) == Some(own_seq);
                    if !front_is_mine || !self.committing.is_empty() {
                        break;
                    }
                    self.stats.io_ops += 1;
                    self.note_retired(head_id, 1);
                    self.finish_slot(head_id);
                    budget -= 1;
                }
            }
        }
    }

    /// Buffer a value-trace event into the slot's chunk, assigning the
    /// next per-core program-order index. Callers check
    /// `trace.enabled()` first so untraced runs pay nothing.
    fn buffer_access(&mut self, now: Cycle, slot: SlotId, make: impl FnOnce(u64, u64) -> Event) {
        let po = self.po_next;
        self.po_next += 1;
        let seq = self.chunk_seq_of(now, slot, "value-trace buffering");
        if let Some(c) = self.chunks.iter_mut().find(|c| c.tag.seq == seq) {
            c.accesses.push(make(seq, po));
        }
    }

    fn note_retired(&mut self, slot: SlotId, n: u64) {
        self.stats.retired += n;
        if let Some(c) = self.chunk_of_slot(slot) {
            c.retired += n;
        }
    }

    fn finish_slot(&mut self, id: SlotId) {
        let slot = self.window.pop_oldest();
        debug_assert_eq!(slot.id, id);
        self.slot_chunks.remove(&id);
    }

    /// A store retires speculatively: route it to W or Wpriv, buffer the
    /// value, and make sure the line is (or will be) in the cache.
    /// Returns false if a cache-set overflow forced a self-squash.
    fn perform_spec_store(
        &mut self,
        now: Cycle,
        slot: SlotId,
        addr: Addr,
        value: u64,
        fab: &mut Fabric,
    ) -> bool {
        let line = addr.line();
        let seq = self.chunk_seq_of(now, slot, "speculative store retire");
        let is_static_priv =
            self.bulk.private == PrivateMode::Static && self.map.is_static_private(addr);
        let dirty_nonspec =
            self.l1.state(line) == Some(LineState::Dirty) && !self.spec_written(line);

        // Make sure the line is present or on its way (§6: must arrive
        // before the chunk commits).
        if !self.l1.contains(line) {
            self.want_line(now, slot, line, Some(seq));
        }

        let use_wpriv = if is_static_priv {
            true
        } else if self.bulk.private == PrivateMode::Dynamic && dirty_nonspec {
            // §5.2: first update of a dirty non-speculative line retains
            // the pre-image in the Private Buffer and skips the writeback.
            if self.priv_buffer.insert(line) {
                true
            } else {
                // Buffer full: fall back to the writeback-and-W path.
                fab.send(
                    now,
                    self.id(),
                    self.dir_node(line),
                    Message::Writeback {
                        line,
                        keep_shared: true,
                    },
                );
                self.l1.set_state(line, LineState::Shared);
                false
            }
        } else {
            if dirty_nonspec {
                // Base design: the committed version must reach memory
                // before the speculative update lands in the cache.
                fab.send(
                    now,
                    self.id(),
                    self.dir_node(line),
                    Message::Writeback {
                        line,
                        keep_shared: true,
                    },
                );
                self.l1.set_state(line, LineState::Shared);
            }
            false
        };

        let already_wpriv = self.chunks.iter().any(|c| c.wpriv.contains_exact(line));
        let core = self.core;
        let chunk = self
            .chunks
            .iter_mut()
            .find(|c| c.tag.seq == seq)
            .unwrap_or_else(|| {
                panic!(
                    "core {core}: cycle {now}: store to {line} retired into chunk \
                     seq {seq}, but no chunk with that tag is live"
                )
            });
        if use_wpriv || (self.bulk.private == PrivateMode::Dynamic && already_wpriv) {
            chunk.wpriv.insert(line);
        } else {
            chunk.w.insert(line);
        }
        chunk.push_store(addr, value);
        true
    }

    fn issue(&mut self, now: Cycle) {
        let mut to_start: Vec<(SlotId, Instr)> = Vec::new();
        let mut depth = 0u64;
        for slot in self.window.iter() {
            depth += slot.remaining.max(1) as u64;
            if depth > self.cfg.issue_window as u64 {
                break;
            }
            if slot.state == SlotState::Waiting {
                match slot.instr {
                    Instr::Load { .. } | Instr::Store { .. } | Instr::Rmw { .. } => {
                        to_start.push((slot.id, slot.instr));
                    }
                    _ => {}
                }
            }
        }
        for (id, instr) in to_start {
            let seq = self.chunk_seq_of(now, id, "issue");
            match instr {
                Instr::Load { addr, .. } => {
                    self.record_read(seq, addr);
                    let forwarded = self.chunks.iter().any(|c| c.forward(addr).is_some());
                    if forwarded || self.l1.contains(addr.line()) {
                        if self.l1.touch(addr.line()) {
                            self.stats.l1_hits += 1;
                        }
                        self.completions
                            .push(Reverse((now + self.cfg.l1_latency, id)));
                    } else {
                        self.want_line(now, id, addr.line(), None);
                        if let Some(m) = self.misses.get_mut(&addr.line()) {
                            if !m.waiting_loads.contains(&id) {
                                m.waiting_loads.push(id);
                            }
                        }
                    }
                    if let Some(s) = self.window.get_mut(id) {
                        s.state = SlotState::Issued;
                    }
                }
                Instr::Rmw { addr, .. } => {
                    // The read side joins R; the line is prefetched; the
                    // op itself performs at the head.
                    self.record_read(seq, addr);
                    if !self.l1.contains(addr.line()) {
                        self.want_line(now, id, addr.line(), None);
                    }
                    if let Some(s) = self.window.get_mut(id) {
                        s.state = SlotState::Done;
                    }
                }
                Instr::Store { addr, .. } => {
                    // Prefetch the line; the store performs at the head.
                    if !self.l1.contains(addr.line()) {
                        self.want_line(now, id, addr.line(), None);
                    }
                    if let Some(s) = self.window.get_mut(id) {
                        s.state = SlotState::Done;
                    }
                }
                _ => {}
            }
        }
    }

    /// Record a read in the slot's chunk's R signature (at issue time; see
    /// the module docs for why this is safely early). Statically-private
    /// reads skip R to avoid pollution (§5.1).
    fn record_read(&mut self, seq: u64, addr: Addr) {
        if self.bulk.private == PrivateMode::Static && self.map.is_static_private(addr) {
            return;
        }
        if let Some(c) = self.chunks.iter_mut().find(|c| c.tag.seq == seq) {
            c.r.insert(addr.line());
        }
    }

    /// Register interest in `line`. `pending_for` marks the chunk that
    /// cannot commit until the line arrives (speculative stores).
    fn want_line(&mut self, now: Cycle, _slot: SlotId, line: LineAddr, pending_for: Option<u64>) {
        self.misses.entry(line).or_insert_with(|| MissEntry {
            sent: false,
            sent_at: 0,
            retry_at: now,
            waiting_loads: Vec::new(),
            invalidated: false,
        });
        if let Some(seq) = pending_for {
            if let Some(c) = self.chunks.iter_mut().find(|c| c.tag.seq == seq) {
                c.pending_lines.insert(line);
            }
        }
    }

    fn send_pending_misses(&mut self, now: Cycle, fab: &mut Fabric) {
        let in_flight = self.misses.values().filter(|m| m.sent).count() as u32;
        let mut budget = self.cfg.mshrs.saturating_sub(in_flight);
        if budget == 0 {
            return;
        }
        let mut lines: Vec<LineAddr> = self
            .misses
            .iter()
            .filter(|(_, m)| !m.sent && m.retry_at <= now)
            .map(|(&l, _)| l)
            .collect();
        lines.sort_unstable();
        for line in lines {
            if budget == 0 {
                break;
            }
            let dst = self.dir_node(line);
            let core = self.core;
            let m = self.misses.get_mut(&line).unwrap_or_else(|| {
                panic!(
                    "core {core}: cycle {now}: miss entry for {line} vanished \
                     while draining the MSHR send queue"
                )
            });
            m.sent = true;
            m.sent_at = now;
            self.stats.l1_misses += 1;
            // §4.3: always a read request, even for writes.
            fab.send(
                now,
                NodeId::Core(self.core),
                dst,
                Message::ReadShared { line },
            );
            budget -= 1;
        }
    }

    fn fetch(&mut self, now: Cycle, fab: &mut Fabric) {
        if self.awaiting.is_some() {
            return;
        }
        if self.prearb_waiting && !self.prearb_granted {
            return;
        }
        for _ in 0..self.cfg.fetch_width {
            if self.program_done && self.stash.is_none() {
                return;
            }
            if self.stats.retired + self.window.occupancy() >= self.budget {
                self.program_done = true;
                self.close_open_chunk();
                return;
            }
            // Chunk boundary by instruction count.
            if self.open_chunk_mut().is_some()
                && self.fetched_into_chunk >= self.effective_chunk_size
            {
                self.close_open_chunk();
            }
            // Make sure there is an open chunk to fetch into.
            if self.open_chunk_mut().is_none() {
                if self.chunks.len() >= self.bulk.chunks_per_core as usize {
                    return; // chunk slots exhausted; wait for a commit
                }
                self.open_chunk(now);
            }
            let instr = match self.stash.take() {
                Some(i) => i,
                None => {
                    let feed = self.feed.take();
                    match self.program.next(feed) {
                        Some(i) => i,
                        None => {
                            self.program_done = true;
                            self.close_open_chunk();
                            return;
                        }
                    }
                }
            };
            // I/O runs in a chunk of its own (§4.1.3).
            if matches!(instr, Instr::Io) && self.fetched_into_chunk > 0 {
                self.close_open_chunk();
                self.stash = Some(instr);
                continue;
            }
            // Preventive set-overflow boundary: if this store's line would
            // have to displace only speculatively-written lines, end the
            // chunk so the store lands in the next one (§4.1.2).
            if let Instr::Store { addr, .. } = instr {
                let line = addr.line();
                let veto_set = self.spec_veto();
                if self.fetched_into_chunk > 0
                    && !self.l1.contains(line)
                    && self.l1.would_overflow(line, |l| veto_set.contains(&l))
                {
                    self.close_open_chunk();
                    self.stash = Some(instr);
                    continue;
                }
            }
            match self.window.push(instr) {
                Some(id) => {
                    let core = self.core;
                    let seq = self
                        .open_chunk_mut()
                        .unwrap_or_else(|| {
                            panic!(
                                "core {core}: cycle {now}: no open chunk to receive \
                                 fetched slot {id} (chunks_per_core misconfigured?)"
                            )
                        })
                        .tag
                        .seq;
                    self.slot_chunks.insert(id, seq);
                    self.fetched_into_chunk += instr.dynamic_count();
                    if matches!(instr, Instr::Io) {
                        self.close_open_chunk();
                    }
                    if instr.consumes_value() {
                        self.awaiting = Some(id);
                        let _ = (now, &fab);
                        return;
                    }
                }
                None => {
                    self.stash = Some(instr);
                    return;
                }
            }
        }
    }

    fn close_open_chunk(&mut self) {
        if let Some(c) = self.chunks.back_mut() {
            if c.state == ChunkState::Open {
                c.state = ChunkState::Closed;
            }
        }
    }

    /// The lines no displacement may touch: speculatively-written lines of
    /// all active chunks.
    fn spec_veto(&self) -> HashSet<LineAddr> {
        let mut set = HashSet::new();
        for c in &self.chunks {
            set.extend(c.w.exact().iter());
            set.extend(c.wpriv.exact().iter());
        }
        set
    }

    // ------------------------------------------------------------------
    // Commit.
    // ------------------------------------------------------------------

    fn maybe_request_commit(&mut self, now: Cycle, fab: &mut Fabric, values: &mut ValueStore) {
        if now < self.commit_retry_at {
            return;
        }
        let Some(front) = self.chunks.front() else {
            return;
        };
        if front.state != ChunkState::Closed || !front.pending_lines.is_empty() {
            return;
        }
        // Fully retired? No slot of this chunk may remain in the window.
        let seq = front.tag.seq;
        if self.slot_chunks.values().any(|&s| s == seq) {
            return;
        }
        let tag = front.tag;
        if self.bulk.commit_without_arbitration {
            // TEST-ONLY fault (see `BulkConfig`): self-grant the commit.
            // No arbiter serialization, no W-signature broadcast — other
            // cores' conflicting chunks are never disambiguated, which is
            // exactly the reordering bug the SC oracle must catch.
            {
                let front = self.chunks.front_mut().unwrap_or_else(|| {
                    panic!(
                        "core {}: cycle {now}: chunk {}.{} disappeared between the \
                         commit check and the arbitration-free self-grant",
                        tag.core, tag.core, tag.seq
                    )
                });
                front.state = ChunkState::Arbitrating;
                if front.t_first_request.is_none() {
                    front.t_first_request = Some(now);
                    self.stats
                        .lat_execute
                        .record(now.saturating_sub(front.t_start));
                }
            }
            self.commit_resp(now, tag, true, values, fab);
            // No CommitComplete will ever arrive for a commit the
            // directory never saw; drop the tracking entry so the run
            // still terminates.
            self.committing.remove(&tag);
            return;
        }
        let w = Box::new(front.w.clone());
        let r = Box::new(front.r.clone());
        let multi = self.bulk.num_arbiters > 1;
        let (dst, r_opt) = if multi {
            let arbs = GArbiter::arbiters_of(&w, &r, self.bulk.num_arbiters);
            if arbs.len() == 1 {
                (NodeId::Arbiter(arbs[0]), Some(r))
            } else {
                (NodeId::GArbiter, Some(r))
            }
        } else if self.bulk.rsig_opt {
            (NodeId::Arbiter(0), None)
        } else {
            (NodeId::Arbiter(0), Some(r))
        };
        {
            let front = self.chunks.front_mut().unwrap_or_else(|| {
                panic!(
                    "core {}: cycle {now}: chunk {}.{} disappeared while its commit \
                     request was being composed",
                    tag.core, tag.core, tag.seq
                )
            });
            front.state = ChunkState::Arbitrating;
            if front.t_first_request.is_none() {
                front.t_first_request = Some(now);
                self.stats
                    .lat_execute
                    .record(now.saturating_sub(front.t_start));
            }
        }
        self.trace.emit(now, || Event::CommitRequest {
            core: tag.core,
            seq: tag.seq,
            w_lines: w.len() as u32,
            carries_rsig: r_opt.is_some(),
        });
        fab.send(
            now,
            self.id(),
            dst,
            Message::CommitReq {
                chunk: tag,
                w,
                r: r_opt,
            },
        );
    }

    fn commit_resp(
        &mut self,
        now: Cycle,
        chunk: ChunkTag,
        ok: bool,
        values: &mut ValueStore,
        fab: &mut Fabric,
    ) {
        let Some(front) = self.chunks.front() else {
            return;
        };
        if front.tag != chunk || front.state != ChunkState::Arbitrating {
            return; // stale response (e.g. chunk was squashed meanwhile)
        }
        if !ok {
            self.stats.commit_denials += 1;
            self.charge_loss(now, "arb_denial");
            self.chunks
                .front_mut()
                .unwrap_or_else(|| {
                    panic!(
                        "core {}: cycle {now}: chunk {}.{} disappeared while its \
                         commit denial was being recorded",
                        chunk.core, chunk.core, chunk.seq
                    )
                })
                .state = ChunkState::Closed;
            self.commit_retry_at = now + self.bulk.commit_retry;
            return;
        }
        let mut front = self.chunks.pop_front().unwrap_or_else(|| {
            panic!(
                "core {}: cycle {now}: chunk {}.{} disappeared while its commit \
                 grant was being applied",
                chunk.core, chunk.core, chunk.seq
            )
        });
        self.charge_loss(now, "committed");
        self.stats
            .lat_arbitration
            .record(now.saturating_sub(front.t_first_request.unwrap_or(now)));
        // Publish the chunk's value trace as one atomic block at the grant
        // cycle: the block's store subsequence is in `store_order` order,
        // and no other core's events can interleave before the writes
        // below land, so stream order equals coherence order.
        for ev in front.accesses.drain(..) {
            self.trace.emit(now, || ev);
        }
        // The commit is granted: make the chunk's stores globally visible.
        for &(addr, value) in &front.store_order {
            values.write(addr, value);
        }
        // The committer is now the owner of the lines it wrote (the
        // directory's Table 1 row 2 does the same on its side).
        for line in front.w.exact().iter().chain(front.wpriv.exact().iter()) {
            if self.l1.contains(line) {
                self.l1.set_state(line, LineState::Dirty);
            }
        }
        // §5.1: private data is kept coherent by sending Wpriv straight to
        // the directories after the grant.
        if self.bulk.private == PrivateMode::Static && !front.wpriv.is_empty() {
            let dirs: Vec<u32> = if self.num_dirs == 1 {
                vec![0]
            } else {
                front.wpriv.decode_sets(self.num_dirs)
            };
            for d in dirs {
                fab.send(
                    now,
                    self.id(),
                    NodeId::Dir(d),
                    Message::PrivSigToDir {
                        chunk,
                        w: Box::new(front.wpriv.clone()),
                    },
                );
            }
        }
        // §5.2: the buffer entries of this chunk are no longer needed.
        for line in front.wpriv.exact().iter() {
            let still_needed = self.chunks.iter().any(|c| c.wpriv.contains_exact(line));
            if !still_needed {
                self.priv_buffer.remove(line);
            }
        }
        self.stats.chunks_committed += 1;
        metrics::inc(metrics::Counter::ChunksCommitted);
        metrics::add(metrics::Counter::InstrsCommitted, front.retired);
        metrics::observe(metrics::Hist::ChunkInstrs, front.retired);
        self.trace.emit(now, || Event::ChunkCommit {
            core: chunk.core,
            seq: chunk.seq,
            read_lines: front.r.len() as u32,
            write_lines: front.w.len() as u32,
            priv_lines: front.wpriv.len() as u32,
        });
        self.stats.read_set.add(front.r.len() as f64);
        self.stats.write_set.add(front.w.len() as f64);
        self.stats.priv_write_set.add(front.wpriv.len() as f64);
        self.stats.read_set_displacements += front.read_displacements;
        if front.w.is_empty() {
            self.stats.empty_w_commits += 1;
        }
        match self.early_completes.remove(&chunk) {
            // The completion raced ahead of the grant response: the
            // directory round was already over when the grant arrived.
            Some(completed_at) => self
                .stats
                .lat_commit_visible
                .record(completed_at.saturating_sub(now)),
            None => {
                self.committing.insert(chunk, now);
            }
        }
        self.consec_squashes = 0;
        self.effective_chunk_size = self.bulk.chunk_size;
        self.prearb_waiting = false;
        self.prearb_granted = false;
        front.stores.clear();
    }

    // ------------------------------------------------------------------
    // Squash.
    // ------------------------------------------------------------------

    /// Squash chunks from index `idx` onward: restore the checkpoint,
    /// discard speculative state, shrink the next chunk if squashes keep
    /// coming. `loss_label` names the cycle-loss cause the interval since
    /// the last lifecycle event is charged to. `attr` is the conflict
    /// attribution the caller computed (xray runs only; `None` keeps the
    /// squash event byte-identical to an attribution-off run).
    fn squash_from(
        &mut self,
        idx: usize,
        cause: SquashCause,
        loss_label: &'static str,
        attr: Option<ConflictAttr>,
        fab: &mut Fabric,
        now: Cycle,
    ) {
        debug_assert!(idx < self.chunks.len());
        self.charge_loss(now, loss_label);
        let first_seq = self.chunks[idx].tag.seq;
        // Restore the program (and its pending feed/stash) as of the
        // squashed chunk's start.
        self.program = self.chunks[idx].checkpoint.clone_box();
        self.feed = self.chunks[idx].checkpoint_feed;
        self.stash = self.chunks[idx].checkpoint_stash;
        self.program_done = false;
        self.awaiting = None;

        // Drop the squashed chunks' slots: they form a program-order
        // suffix of the window.
        let slot_chunks = &self.slot_chunks;
        let mut wasted = self.window.squash_newest_while(|id| {
            slot_chunks
                .get(&id)
                .map(|&s| s >= first_seq)
                .unwrap_or(false)
        });
        self.slot_chunks.retain(|_, &mut s| s < first_seq);
        debug_assert!(
            !self.window.iter().any(|s| self
                .slot_chunks
                .get(&s.id)
                .map(|&c| c >= first_seq)
                .unwrap_or(false)),
            "squashed slots must form a window suffix"
        );

        // Discard the squashed chunks and their speculative cache state.
        let squashed: Vec<Chunk> = self.chunks.drain(idx..).collect();
        for c in &squashed {
            wasted += c.retired;
            self.stats.retired = self.stats.retired.saturating_sub(c.retired);
            // Bulk invalidation of the lines this chunk speculatively
            // wrote (W only: Wpriv lines keep their committed pre-image,
            // §5.2). The exact shadow is used so that older chunks' lines
            // are never hit.
            for line in c.w.exact().iter() {
                self.l1.invalidate(line);
            }
            for line in c.wpriv.exact().iter() {
                let still_needed = self.chunks.iter().any(|k| k.wpriv.contains_exact(line));
                if !still_needed {
                    self.priv_buffer.remove(line);
                }
            }
        }
        self.stats.squashes += 1;
        self.stats.squashed_instrs += wasted;
        metrics::add(metrics::Counter::InstrsSquashed, wasted);
        self.trace.emit(now, || Event::Squash {
            core: self.core,
            seq: first_seq,
            cause,
            squashed_instrs: wasted,
            xray: attr.map(Box::new),
        });

        // §3.3 forward progress: exponential chunk-size reduction, then
        // pre-arbitration.
        self.consec_squashes += 1;
        if self.consec_squashes >= self.bulk.backoff_after {
            let shift = (self.consec_squashes - self.bulk.backoff_after + 1).min(10);
            self.effective_chunk_size = (self.bulk.chunk_size >> shift).max(16);
        }
        if self.consec_squashes >= self.bulk.prearb_after && !self.prearb_waiting {
            self.prearb_waiting = true;
            self.stats.prearbs += 1;
            fab.send(now, self.id(), NodeId::Arbiter(0), Message::PreArbReq);
        }
        self.fetched_into_chunk = 0;
    }

    // ------------------------------------------------------------------
    // Message handling.
    // ------------------------------------------------------------------

    /// Process one incoming message.
    ///
    /// # Panics
    ///
    /// Panics on baseline-only messages (`Inv`, `UpgradeAck`).
    pub fn handle(&mut self, now: Cycle, env: Envelope, fab: &mut Fabric, values: &mut ValueStore) {
        let _prof = bulksc_prof::scope(bulksc_prof::Phase::Execute);
        match env.msg {
            Message::Data {
                line,
                exclusive,
                data,
            } => self.fill(now, line, exclusive, data, fab),
            Message::Nack { line } => {
                self.stats.nacks += 1;
                if let Some(m) = self.misses.get_mut(&line) {
                    m.sent = false;
                    m.retry_at = now + self.cfg.nack_retry;
                }
                if let Some((src, for_excl)) = self.pending_fetches.remove(&line) {
                    self.surrender_line(now, line, src, for_excl, fab);
                }
            }
            Message::Fetch { line, for_excl } => {
                if self.misses.get(&line).map(|m| m.sent).unwrap_or(false) {
                    self.pending_fetches.insert(line, (env.src, for_excl));
                } else {
                    self.surrender_line(now, line, env.src, for_excl, fab);
                }
            }
            Message::WSigInv {
                chunk,
                w,
                needs_ack,
            } => {
                self.wsig_inv(now, chunk, &w, needs_ack, env.src, fab);
            }
            Message::DisplaceSig { line, sig } => self.displace(now, line, &sig, env.src, fab),
            Message::CommitResp { chunk, ok } => self.commit_resp(now, chunk, ok, values, fab),
            Message::RSigReq { chunk } => {
                self.stats.rsig_sent += 1;
                let Some(front) = self.chunks.front() else {
                    return;
                };
                if front.tag != chunk {
                    return;
                }
                let r = Box::new(front.r.clone());
                fab.send(now, self.id(), env.src, Message::RSigResp { chunk, r });
            }
            Message::CommitComplete { chunk } => match self.committing.remove(&chunk) {
                Some(granted_at) => self
                    .stats
                    .lat_commit_visible
                    .record(now.saturating_sub(granted_at)),
                None => {
                    self.early_completes.insert(chunk, now);
                }
            },
            Message::PreArbGrant => {
                self.prearb_granted = true;
            }
            other => panic!("BulkSC core received unexpected message {other:?}"),
        }
    }

    /// Incoming W signature of a committing chunk: bulk disambiguation
    /// (maybe squash) then bulk invalidation of the signature's lines.
    fn wsig_inv(
        &mut self,
        now: Cycle,
        chunk: ChunkTag,
        w: &TrackedSig,
        needs_ack: bool,
        src: NodeId,
        fab: &mut Fabric,
    ) {
        debug_assert_ne!(chunk.core, self.core, "own W never comes back");
        // 1. Disambiguate: the oldest colliding chunk and all younger ones
        //    squash (CReq1's in-order rule).
        let victim = self.chunks.iter().position(|c| c.collides_with(w));
        if std::env::var_os("BULKSC_TRACE_DISAMBIG").is_some() && !w.is_empty() {
            for c in &self.chunks {
                eprintln!(
                    "DISAMBIG core{} w_len={} r_len={} bloom={} exact={}",
                    self.core,
                    w.len(),
                    c.r.len(),
                    c.collides_with(w),
                    c.collides_exactly_with(w)
                );
            }
        }
        if let Some(idx) = victim {
            let exact = self
                .chunks
                .iter()
                .skip(idx)
                .any(|c| c.collides_exactly_with(w));
            let cause = if exact {
                self.stats.true_squashes += 1;
                SquashCause::TrueSharing
            } else {
                self.stats.alias_squashes += 1;
                SquashCause::Alias
            };
            metrics::inc(metrics::Counter::for_squash_cause(cause));
            metrics::live::squash(cause);
            // Which signature detected the conflict: the victim's R (a
            // read this chunk did) or its W (a write-write collision).
            let label = if w.intersects(&self.chunks[idx].r) {
                "r_sig_conflict"
            } else {
                "w_sig_conflict"
            };
            // The committing chunk whose W arrived is the aggressor; its
            // tag rode along with the invalidation.
            let attr = self
                .bulk
                .xray
                .then(|| self.conflict_attr(idx, w, "wsig", Some(chunk)));
            self.squash_from(idx, cause, label, attr, fab, now);
        }
        // 2. Bulk invalidation: δ-expand the signature over the L1 and
        //    invalidate members. Lines whose pre-image the Private Buffer
        //    retains stay (the commit cannot really have written them —
        //    we are their registered owner).
        for set in w.decode_sets(self.l1.num_sets()) {
            for line in self.l1.lines_in_set(set) {
                if w.contains(line) && !self.priv_buffer.contains(line) && !self.spec_written(line)
                {
                    self.l1.invalidate(line);
                    self.note_lost_clean_line(line);
                    self.stats.cache_invs += 1;
                    if !w.contains_exact(line) {
                        self.stats.extra_cache_invs += 1;
                        metrics::inc(metrics::Counter::SigFpExtraInvs);
                    }
                }
            }
        }
        // 3. Stale-fill protection: in-flight fills for lines the commit
        //    wrote must not install.
        for (line, m) in self.misses.iter_mut() {
            if m.sent && w.contains(*line) {
                m.invalidated = true;
            }
        }
        if needs_ack {
            fab.send(now, self.id(), src, Message::WSigInvAck { chunk });
        }
    }

    /// Build the xray attribution for a disambiguation squash: witnesses
    /// are the exact-shadow lines the incoming signature shares with any
    /// victim chunk's R or W set (the chunks from `idx` on all squash),
    /// lowest addresses first, capped at
    /// [`bulksc_trace::XRAY_WITNESS_CAP`]. Empty witnesses under a Bloom
    /// collision ⇒ the squash was a pure-alias false positive. Read-only
    /// over simulation state; only called when `bulk.xray` is set.
    fn conflict_attr(
        &self,
        idx: usize,
        sig: &TrackedSig,
        site: &'static str,
        aggressor: Option<ChunkTag>,
    ) -> ConflictAttr {
        const CAP: usize = bulksc_trace::XRAY_WITNESS_CAP;
        let mut witnesses: Vec<u64> = Vec::new();
        for c in self.chunks.iter().skip(idx) {
            witnesses.extend(sig.exact_witnesses(&c.r, CAP).iter().map(|l| l.0));
            witnesses.extend(sig.exact_witnesses(&c.w, CAP).iter().map(|l| l.0));
        }
        witnesses.sort_unstable();
        witnesses.dedup();
        witnesses.truncate(CAP);
        ConflictAttr {
            agg_core: aggressor.map(|t| t.core),
            agg_seq: aggressor.map(|t| t.seq),
            site,
            witnesses,
        }
    }

    /// Track read-set displacement statistics when a line leaves the L1.
    fn note_lost_clean_line(&mut self, line: LineAddr) {
        for c in self.chunks.iter_mut() {
            if c.r.contains_exact(line) {
                c.read_displacements += 1;
            }
        }
    }

    fn displace(
        &mut self,
        now: Cycle,
        line: LineAddr,
        sig: &TrackedSig,
        src: NodeId,
        fab: &mut Fabric,
    ) {
        // §4.3.3: bulk disambiguation with our R and W signatures; may
        // squash. A committing chunk that already cleared its signatures
        // is naturally unaffected.
        let victim = self.chunks.iter().position(|c| c.collides_with(sig));
        if let Some(idx) = victim {
            // Displacement disambiguation is signature-based (§4.3.3), so
            // its false positives are aliasing costs too.
            let exact = self
                .chunks
                .iter()
                .skip(idx)
                .any(|c| c.collides_exactly_with(sig));
            let cause = if exact {
                self.stats.true_squashes += 1;
                SquashCause::TrueSharing
            } else {
                self.stats.alias_squashes += 1;
                SquashCause::Alias
            };
            metrics::inc(metrics::Counter::for_squash_cause(cause));
            metrics::live::squash(cause);
            let label = if sig.intersects(&self.chunks[idx].r) {
                "r_sig_conflict"
            } else {
                "w_sig_conflict"
            };
            // A directory-displacement sweep has no committing chunk to
            // blame; the witnesses still localize the conflict.
            let attr = self
                .bulk
                .xray
                .then(|| self.conflict_attr(idx, sig, "displacement", None));
            self.squash_from(idx, cause, label, attr, fab, now);
        }
        let state = self.l1.invalidate(line);
        if self.priv_buffer.remove(line) {
            // The displaced line's pre-image leaves the buffer; make sure
            // the eventual commit announces the write.
            for c in self.chunks.iter_mut() {
                if c.wpriv.contains_exact(line) {
                    c.w.insert(line);
                }
            }
        }
        if let Some(m) = self.misses.get_mut(&line) {
            m.invalidated = true;
        }
        fab.send(
            now,
            self.id(),
            src,
            Message::InvAck {
                line,
                dirty: state == Some(LineState::Dirty),
            },
        );
    }

    fn surrender_line(
        &mut self,
        now: Cycle,
        line: LineAddr,
        dst: NodeId,
        for_excl: bool,
        fab: &mut Fabric,
    ) {
        // §5.2: an external request for a line whose old version sits in
        // the Private Buffer is served from the buffer, and the address
        // goes (back) into W so the commit will announce the write.
        if self.priv_buffer.contains(line) {
            self.priv_buffer.remove(line);
            self.stats.priv_buffer_supplies += 1;
            self.trace.emit(now, || Event::PrivSupply {
                core: self.core,
                line: line.0,
            });
            for c in self.chunks.iter_mut() {
                if c.wpriv.contains_exact(line) {
                    c.w.insert(line);
                }
            }
            self.l1.set_state(line, LineState::Shared);
            fab.send(
                now,
                self.id(),
                dst,
                Message::FetchResp {
                    line,
                    dirty: true,
                    had_line: true,
                },
            );
            return;
        }
        let state = if for_excl {
            let s = self.l1.invalidate(line);
            self.note_lost_clean_line(line);
            s
        } else {
            let s = self.l1.state(line);
            if s.is_some() {
                self.l1.set_state(line, LineState::Shared);
            }
            s
        };
        fab.send(
            now,
            self.id(),
            dst,
            Message::FetchResp {
                line,
                dirty: state == Some(LineState::Dirty),
                had_line: state.is_some(),
            },
        );
    }

    fn answer_deferred_fetches(&mut self, now: Cycle, fab: &mut Fabric) {
        let due: Vec<(Cycle, LineAddr, NodeId, bool)> = self
            .deferred_fetches
            .iter()
            .filter(|(t, ..)| *t <= now)
            .copied()
            .collect();
        self.deferred_fetches.retain(|(t, ..)| *t > now);
        for (_, line, src, for_excl) in due {
            self.surrender_line(now, line, src, for_excl, fab);
        }
    }

    fn fill(
        &mut self,
        now: Cycle,
        line: LineAddr,
        exclusive: bool,
        data: bulksc_sig::LineData,
        fab: &mut Fabric,
    ) {
        if self
            .misses
            .get(&line)
            .map(|m| m.invalidated)
            .unwrap_or(false)
        {
            // Stale fill: re-request (the chunk that wanted it was either
            // squashed or will read the fresh copy).
            if let Some((src, for_excl)) = self.pending_fetches.remove(&line) {
                self.surrender_line(now, line, src, for_excl, fab);
            }
            let core = self.core;
            let m = self.misses.get_mut(&line).unwrap_or_else(|| {
                panic!(
                    "core {core}: cycle {now}: miss entry for {line} vanished \
                     while its stale fill was being re-requested"
                )
            });
            m.sent = false;
            m.invalidated = false;
            m.retry_at = now + 1;
            return;
        }
        let state = if exclusive {
            LineState::Exclusive
        } else {
            LineState::Shared
        };
        let veto_set = self.spec_veto();
        match self.l1.insert(line, state, |l| veto_set.contains(&l)) {
            InsertOutcome::Evicted {
                line: victim,
                state: vstate,
            } => {
                self.note_lost_clean_line(victim);
                self.trace.emit(now, || Event::CacheDisplacement {
                    core: self.core,
                    line: victim.0,
                });
                if vstate == LineState::Dirty {
                    fab.send(
                        now,
                        self.id(),
                        self.dir_node(victim),
                        Message::Writeback {
                            line: victim,
                            keep_shared: false,
                        },
                    );
                }
                // Speculatively-read displacements are harmless (the R
                // signature remembers them) — that is the SC++ contrast
                // the paper highlights.
                let displaced_spec_read = self.chunks.iter().any(|c| c.r.contains_exact(victim));
                if displaced_spec_read {
                    self.stats.read_set_displacements += 1;
                }
            }
            InsertOutcome::SetOverflow => {
                // Every way holds speculatively-written lines: the fetch-
                // time guard missed this one (lines written after the
                // check). Fall back to self-squashing the youngest chunk,
                // which shrinks on repetition (§3.3).
                self.stats.overflow_squashes += 1;
                metrics::inc(metrics::Counter::for_squash_cause(SquashCause::Overflow));
                metrics::live::squash(SquashCause::Overflow);
                if !self.chunks.is_empty() {
                    let idx = self.chunks.len() - 1;
                    // A self-squash: no aggressor, no witnesses — the
                    // cache set, not another chunk, ran out of room.
                    let attr = self.bulk.xray.then(|| ConflictAttr {
                        agg_core: None,
                        agg_seq: None,
                        site: "overflow",
                        witnesses: Vec::new(),
                    });
                    self.squash_from(
                        idx,
                        SquashCause::Overflow,
                        "displacement_overflow",
                        attr,
                        fab,
                        now,
                    );
                }
            }
            InsertOutcome::Placed => {}
        }
        // The line arrived: chunks blocked on it may now commit.
        for c in self.chunks.iter_mut() {
            c.pending_lines.remove(&line);
        }
        if let Some(m) = self.misses.remove(&line) {
            if m.sent {
                self.stats.lat_miss.record(now.saturating_sub(m.sent_at));
            }
            for slot in m.waiting_loads {
                // Values: forwarding first, then the response snapshot.
                let Some(s) = self.window.get_mut(slot) else {
                    continue;
                };
                if s.state != SlotState::Issued {
                    continue;
                }
                let Instr::Load { addr, .. } = s.instr else {
                    continue;
                };
                let v = match self.window_forward(slot, addr) {
                    WindowForward::Value(v) => v,
                    WindowForward::Unknown => {
                        self.completions.push(Reverse((now + 1, slot)));
                        continue;
                    }
                    WindowForward::None => self
                        .chunks
                        .iter()
                        .rev()
                        .find_map(|c| c.forward(addr))
                        .unwrap_or(data[addr.line_offset() as usize]),
                };
                let s = self.slot_mut(now, slot, "load woken by a fill");
                s.state = SlotState::Done;
                s.value = Some(v);
            }
        }
        if let Some((src, for_excl)) = self.pending_fetches.remove(&line) {
            self.deferred_fetches
                .push((now + self.cfg.l1_latency + 1, line, src, for_excl));
        }
    }

    fn check_finished(&mut self, now: Cycle) {
        if self.stats.finished_at.is_some() {
            return;
        }
        // Drop a trailing empty chunk so budget-exact runs can finish.
        if self.program_done
            && self.stash.is_none()
            && self.window.is_empty()
            && self.chunks.len() == 1
        {
            let only = self.chunks.front().unwrap_or_else(|| {
                panic!(
                    "core {}: cycle {now}: the final chunk disappeared while being \
                     examined for the trailing-empty-chunk drop",
                    self.core
                )
            });
            if only.retired == 0 && only.stores.is_empty() && only.r.is_empty() {
                let tag = only.tag;
                self.trace.emit(now, || Event::ChunkAbandon {
                    core: tag.core,
                    seq: tag.seq,
                });
                self.chunks.clear();
            }
        }
        if self.program_done
            && self.stash.is_none()
            && self.window.is_empty()
            && self.chunks.is_empty()
            && self.committing.is_empty()
        {
            self.stats.finished_at = Some(now);
        }
    }

    /// Earliest cycle at which this node may do useful work (`now` is
    /// always a safe answer).
    pub fn idle_until(&self, now: Cycle) -> Cycle {
        if self.finished() {
            return self
                .deferred_fetches
                .iter()
                .map(|&(c, ..)| c)
                .min()
                .unwrap_or(Cycle::MAX);
        }
        // Un-issued memory operations are immediate work.
        if self.window.iter().any(|s| s.state == SlotState::Waiting) {
            return now;
        }
        if let Some(head) = self.window.oldest() {
            let retirable = match head.instr {
                Instr::Compute(_) | Instr::Fence | Instr::Store { .. } => true,
                Instr::Load { .. } => head.state == SlotState::Done,
                Instr::Rmw { addr, .. } => {
                    self.l1.contains(addr.line())
                        || self.chunks.iter().any(|c| c.forward(addr).is_some())
                }
                Instr::Io => {
                    self.chunks
                        .front()
                        .map(|c| Some(c.tag.seq) == self.slot_chunks.get(&head.id).copied())
                        .unwrap_or(false)
                        && self.committing.is_empty()
                }
            };
            if retirable {
                return now;
            }
        }
        // A commit-ready front chunk is immediate work.
        if self
            .chunks
            .front()
            .map(|c| {
                c.state == ChunkState::Closed
                    && c.pending_lines.is_empty()
                    && self.commit_retry_at <= now
                    && !self.slot_chunks.values().any(|&s| s == c.tag.seq)
            })
            .unwrap_or(false)
        {
            return now;
        }
        let can_fetch = (!self.program_done || self.stash.is_some())
            && self.awaiting.is_none()
            && (!self.prearb_waiting || self.prearb_granted)
            && (self.open_chunk_mut_peek()
                || self.chunks.len() < self.bulk.chunks_per_core as usize);
        if can_fetch {
            return now;
        }
        let mut t = Cycle::MAX;
        if let Some(&Reverse((c, _))) = self.completions.peek() {
            t = t.min(c);
        }
        for m in self.misses.values() {
            if !m.sent {
                t = t.min(m.retry_at);
            }
        }
        for &(c, ..) in &self.deferred_fetches {
            t = t.min(c);
        }
        if self
            .chunks
            .front()
            .map(|c| c.state == ChunkState::Closed && c.pending_lines.is_empty())
            .unwrap_or(false)
        {
            t = t.min(self.commit_retry_at.max(now + 1));
        }
        t.max(now + 1)
    }

    fn open_chunk_mut_peek(&self) -> bool {
        self.chunks
            .back()
            .map(|c| c.state == ChunkState::Open)
            .unwrap_or(false)
    }

    /// One-line diagnostic snapshot.
    pub fn debug_state(&self) -> String {
        format!(
            "bulk core{} head={:?} win={} chunks={:?} committing={} misses={:?} pending_front={:?} prearb={}/{} done={} finished={:?}",
            self.core,
            self.window.oldest().map(|s| format!("{:?}/{:?}", s.instr, s.state)),
            self.window.len(),
            self.chunks.iter().map(|c| format!("{}:{:?}r{}", c.tag, c.state, c.retired)).collect::<Vec<_>>(),
            self.committing.len(),
            self.misses
                .iter()
                .map(|(l, m)| format!("{l}:sent={},inv={},retry={}", m.sent, m.invalidated, m.retry_at))
                .collect::<Vec<_>>(),
            self.chunks.front().map(|c| c.pending_lines.len()),
            self.prearb_waiting,
            self.prearb_granted,
            self.program_done,
            self.stats.finished_at,
        )
    }
}
