//! The complete simulated machine (Figure 5 of the paper): cores with
//! their L1s and BDMs, directory modules, arbiter(s), the optional
//! G-arbiter, and the interconnect — advanced cycle by cycle,
//! deterministically.

use bulksc_cpu::{BaselineNode, CoreStats, ValueStore};
use bulksc_net::{Cycle, Envelope, Fabric, NodeId};
use bulksc_trace::{Event, IntervalSeries, TraceHandle};
use bulksc_workloads::{AddressMap, ThreadProgram};

use bulksc_mem::{DirStats, Directory};

use crate::arbiter::{ArbStats, Arbiter};
use crate::config::{Model, SystemConfig};
use crate::garbiter::GArbiter;
use crate::node::{BulkNode, BulkStats};

/// One core endpoint: a baseline core or a BulkSC core.
///
/// (Both variants are hundreds of bytes and there are only `cores` of
/// them, heap-allocated once per run — boxing would buy nothing.)
#[allow(clippy::large_enum_variant)]
pub enum CoreNode {
    /// SC / RC / SC++ (from `bulksc-cpu`).
    Baseline(BaselineNode),
    /// The BulkSC checkpointed core.
    Bulk(BulkNode),
}

impl CoreNode {
    fn tick(&mut self, now: Cycle, fab: &mut Fabric, values: &mut ValueStore) {
        match self {
            CoreNode::Baseline(n) => n.tick(now, fab, values),
            CoreNode::Bulk(n) => n.tick(now, fab, values),
        }
    }

    fn handle(&mut self, now: Cycle, env: Envelope, fab: &mut Fabric, values: &mut ValueStore) {
        match self {
            CoreNode::Baseline(n) => n.handle(now, env, fab, values),
            CoreNode::Bulk(n) => n.handle(now, env, fab, values),
        }
    }

    fn finished(&self) -> bool {
        match self {
            CoreNode::Baseline(n) => n.finished(),
            CoreNode::Bulk(n) => n.finished(),
        }
    }

    fn idle_until(&self, now: Cycle) -> Cycle {
        match self {
            CoreNode::Baseline(n) => n.idle_until(now),
            CoreNode::Bulk(n) => n.idle_until(now),
        }
    }

    /// The thread program, for reading observations after a run.
    pub fn program(&self) -> &dyn ThreadProgram {
        match self {
            CoreNode::Baseline(n) => n.program(),
            CoreNode::Bulk(n) => n.program(),
        }
    }

    /// BulkSC statistics, if this is a BulkSC core.
    pub fn bulk_stats(&self) -> Option<&BulkStats> {
        match self {
            CoreNode::Bulk(n) => Some(n.stats()),
            CoreNode::Baseline(_) => None,
        }
    }

    /// Baseline statistics, if this is a baseline core.
    pub fn baseline_stats(&self) -> Option<&CoreStats> {
        match self {
            CoreNode::Baseline(n) => Some(n.stats()),
            CoreNode::Bulk(_) => None,
        }
    }

    /// One-line diagnostic snapshot.
    pub fn debug_state(&self) -> String {
        match self {
            CoreNode::Baseline(n) => n.debug_state(),
            CoreNode::Bulk(n) => n.debug_state(),
        }
    }
}

/// The whole machine.
pub struct System {
    cfg: SystemConfig,
    nodes: Vec<CoreNode>,
    dirs: Vec<Directory>,
    arbiters: Vec<Arbiter>,
    garbiter: Option<GArbiter>,
    fabric: Fabric,
    values: ValueStore,
    now: Cycle,
    trace: TraceHandle,
    sampler: Option<IntervalSeries>,
}

impl System {
    /// Build the machine of `cfg` running one program per core.
    ///
    /// # Panics
    ///
    /// Panics if the program count does not match the core count, or if a
    /// distributed-arbiter configuration does not pair arbiters with
    /// directories one-to-one.
    pub fn new(cfg: SystemConfig, programs: Vec<Box<dyn ThreadProgram>>) -> Self {
        let _prof = bulksc_prof::scope(bulksc_prof::Phase::Setup);
        assert_eq!(programs.len() as u32, cfg.cores, "one program per core");
        let map = AddressMap::new(cfg.cores);
        let num_dirs = cfg.dirs;
        assert!(num_dirs >= 1, "at least one directory");
        if matches!(cfg.model, Model::Baseline(_)) {
            assert_eq!(
                num_dirs, 1,
                "baseline models are wired for a single directory"
            );
        }

        let nodes: Vec<CoreNode> = programs
            .into_iter()
            .enumerate()
            .map(|(i, p)| match &cfg.model {
                Model::Baseline(m) => CoreNode::Baseline(BaselineNode::new(
                    i as u32,
                    *m,
                    cfg.core,
                    cfg.l1,
                    p,
                    cfg.budget,
                    dir_of_static,
                )),
                Model::Bulk(b) => CoreNode::Bulk(BulkNode::new(
                    i as u32,
                    cfg.core,
                    b.clone(),
                    cfg.l1,
                    p,
                    cfg.budget,
                    num_dirs,
                    map,
                )),
            })
            .collect();

        let dirs: Vec<Directory> = (0..num_dirs)
            .map(|i| Directory::new(NodeId::Dir(i), cfg.dir.clone()))
            .collect();

        let (arbiters, garbiter) = match &cfg.model {
            Model::Baseline(_) => (Vec::new(), None),
            Model::Bulk(b) => {
                let n = b.num_arbiters;
                let mut arbs: Vec<Arbiter> = if n == 1 {
                    vec![Arbiter::new(
                        NodeId::Arbiter(0),
                        b.arb_latency,
                        (0..num_dirs).collect(),
                        num_dirs,
                    )]
                } else {
                    assert_eq!(
                        n, num_dirs,
                        "distributed arbiters pair one-to-one with directories"
                    );
                    (0..n)
                        .map(|i| Arbiter::new(NodeId::Arbiter(i), b.arb_latency, vec![i], num_dirs))
                        .collect()
                };
                let mut g = (n > 1).then(|| GArbiter::new(b.arb_latency, n));
                if b.xray {
                    for a in &mut arbs {
                        a.set_xray(true);
                    }
                    if let Some(g) = &mut g {
                        g.set_xray(true);
                    }
                }
                (arbs, g)
            }
        };

        System {
            fabric: Fabric::new(cfg.fabric),
            nodes,
            dirs,
            arbiters,
            garbiter,
            cfg,
            values: ValueStore::new(),
            now: 0,
            trace: TraceHandle::off(),
            sampler: None,
        }
    }

    /// Route every component's events to `trace`'s sinks: the fabric's
    /// sends, the system's delivers, and the chunk-lifecycle events of the
    /// BulkSC cores, directories, and (G-)arbiters. Clones of the handle
    /// share the same sinks, so one attached sink sees the whole machine.
    pub fn set_tracer(&mut self, trace: TraceHandle) {
        self.fabric.set_tracer(trace.clone());
        for n in &mut self.nodes {
            match n {
                CoreNode::Bulk(b) => b.set_tracer(trace.clone()),
                CoreNode::Baseline(b) => b.set_tracer(trace.clone()),
            }
        }
        for d in &mut self.dirs {
            d.set_tracer(trace.clone());
        }
        for a in &mut self.arbiters {
            a.set_tracer(trace.clone());
        }
        if let Some(g) = &mut self.garbiter {
            g.set_tracer(trace.clone());
        }
        self.trace = trace;
    }

    /// Record an [`bulksc_trace::IntervalSample`] every `every` cycles
    /// (clamped to at least 1). Idle fast-forwarded stretches collapse
    /// into the sample at the next boundary actually stepped.
    ///
    /// The series is primed with the *current* cycle and counter totals,
    /// so enabling sampling mid-run yields a first sample covering only
    /// the window since now — not deltas diluted over the whole untraced
    /// prefix.
    pub fn enable_sampling(&mut self, every: Cycle) {
        let mut series = IntervalSeries::new(every);
        series.prime(self.now, &self.per_core_retired(), self.gauge_snapshot());
        self.sampler = Some(series);
    }

    /// The interval samples collected so far (empty slice if sampling was
    /// never enabled).
    pub fn samples(&self) -> &[bulksc_trace::IntervalSample] {
        self.sampler.as_ref().map(|s| s.samples()).unwrap_or(&[])
    }

    /// The interval series itself, for JSON export.
    pub fn interval_series(&self) -> Option<&IntervalSeries> {
        self.sampler.as_ref()
    }

    fn per_core_retired(&self) -> Vec<u64> {
        self.nodes
            .iter()
            .map(|n| match n {
                CoreNode::Baseline(b) => b.stats().retired,
                CoreNode::Bulk(b) => b.stats().retired,
            })
            .collect()
    }

    fn gauge_snapshot(&self) -> bulksc_trace::GaugeSnapshot {
        bulksc_trace::GaugeSnapshot {
            pending_w: self.arbiters.iter().map(|a| a.pending() as u64).sum(),
            arb_queue: self.arbiters.iter().map(|a| a.queue_depth() as u64).sum(),
            squashing_cores: self
                .nodes
                .iter()
                .filter(|n| matches!(n, CoreNode::Bulk(b) if b.squashing()))
                .count() as u64,
            fabric_depth: self.fabric.in_flight() as u64,
            traffic_bytes: self.fabric.traffic().total(),
            messages: self.fabric.traffic().messages(),
        }
    }

    fn drive_sampler(&mut self) {
        let Some(s) = &self.sampler else { return };
        let _prof = bulksc_prof::scope(bulksc_prof::Phase::Sampler);
        if !s.due(self.now) {
            return;
        }
        let retired = self.per_core_retired();
        let gauges = self.gauge_snapshot();
        let s = self.sampler.as_mut().expect("checked above");
        s.record(self.now, &retired, gauges);
    }

    /// Current simulation time.
    pub fn cycles(&self) -> Cycle {
        self.now
    }

    /// The machine configuration.
    pub fn config(&self) -> &SystemConfig {
        &self.cfg
    }

    /// Committed memory values.
    pub fn values(&self) -> &ValueStore {
        &self.values
    }

    /// Interconnect traffic so far.
    pub fn traffic(&self) -> &bulksc_net::TrafficStats {
        self.fabric.traffic()
    }

    /// The core endpoints (stats, programs, observations).
    pub fn nodes(&self) -> &[CoreNode] {
        &self.nodes
    }

    /// The directory modules.
    pub fn dir_stats(&self) -> Vec<&DirStats> {
        self.dirs.iter().map(|d| d.stats()).collect()
    }

    /// The arbiter modules (empty for baselines).
    pub fn arbiter_stats(&self) -> Vec<&ArbStats> {
        self.arbiters.iter().map(|a| a.stats()).collect()
    }

    /// The G-arbiter, if this is a distributed-arbiter machine.
    pub fn garbiter_stats(&self) -> Option<&crate::garbiter::GArbStats> {
        self.garbiter.as_ref().map(|g| g.stats())
    }

    /// Per-thread observation logs (litmus outcomes).
    pub fn observations(&self) -> Vec<Vec<u64>> {
        self.nodes
            .iter()
            .map(|n| n.program().observations())
            .collect()
    }

    /// True once every core has finished and the network has drained.
    pub fn finished(&self) -> bool {
        self.nodes.iter().all(|n| n.finished()) && self.fabric.is_idle()
    }

    /// Advance one cycle: deliver due messages, then tick every core.
    pub fn step(&mut self) {
        let due = self.fabric.deliver_due(self.now);
        for env in due {
            self.trace.emit(self.now, || Event::NetDeliver {
                src: env.src.into(),
                dst: env.dst.into(),
                kind: env.msg.kind(),
            });
            match env.dst {
                NodeId::Core(c) => {
                    self.nodes[c as usize].handle(self.now, env, &mut self.fabric, &mut self.values)
                }
                NodeId::Dir(d) => {
                    self.dirs[d as usize].handle(self.now, env, &mut self.fabric, &self.values)
                }
                NodeId::Arbiter(a) => {
                    self.arbiters[a as usize].handle(self.now, env, &mut self.fabric)
                }
                NodeId::GArbiter => self
                    .garbiter
                    .as_mut()
                    .expect("G-arbiter configured")
                    .handle(self.now, env, &mut self.fabric),
            }
        }
        for n in &mut self.nodes {
            n.tick(self.now, &mut self.fabric, &mut self.values);
        }
        self.drive_sampler();
        self.now += 1;
    }

    /// Run until every core finishes or `max_cycles` elapse. Returns true
    /// if the machine finished. Idle stretches are skipped, so wall-clock
    /// cost tracks useful simulation work.
    pub fn run(&mut self, max_cycles: Cycle) -> bool {
        let _prof = bulksc_prof::scope(bulksc_prof::Phase::Run);
        while self.now < max_cycles {
            if self.finished() {
                bulksc_metrics::inc(bulksc_metrics::Counter::RunsCompleted);
                return true;
            }
            // Fast-forward: if no node can work now and no message is due,
            // jump straight to the next event — and step there.
            let node_next = self
                .nodes
                .iter()
                .map(|n| n.idle_until(self.now))
                .min()
                .unwrap_or(Cycle::MAX);
            let net_next = self.fabric.next_delivery().unwrap_or(Cycle::MAX);
            let next = node_next.min(net_next);
            if next == Cycle::MAX {
                // Nothing will ever happen again.
                if self.finished() {
                    bulksc_metrics::inc(bulksc_metrics::Counter::RunsCompleted);
                    return true;
                }
                return false;
            }
            if next > self.now {
                self.now = next.min(max_cycles);
            }
            self.step();
        }
        self.finished()
    }

    /// One-line diagnostic snapshot of the whole machine (for debugging
    /// stuck runs).
    pub fn debug_state(&self) -> String {
        let mut s = String::new();
        for n in &self.nodes {
            s.push_str(&n.debug_state());
            s.push('\n');
        }
        for d in &self.dirs {
            s.push_str(&d.debug_state());
            s.push('\n');
        }
        for a in &self.arbiters {
            s.push_str(&format!("arbiter pending={}\n", a.pending()));
        }
        if let Some(g) = &self.garbiter {
            s.push_str(&g.debug_state());
            s.push('\n');
        }
        s.push_str(&format!(
            "fabric idle={} next={:?} now={}",
            self.fabric.is_idle(),
            self.fabric.next_delivery(),
            self.now
        ));
        if let Some(ring) = self.trace.ring_dump() {
            s.push('\n');
            s.push_str(&ring);
        }
        s
    }
}

/// Line-to-directory routing for baseline nodes (single-directory default;
/// multi-directory baselines route the same way BulkSC cores do).
fn dir_of_static(line: bulksc_sig::LineAddr) -> u32 {
    let _ = line;
    0
}
