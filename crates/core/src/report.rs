//! Aggregated run metrics in the paper's units.
//!
//! [`SimReport::collect`] condenses a finished [`System`] into exactly the
//! quantities the paper's evaluation reports: Figure 9/10 speedups come
//! from `cycles`, Table 3's characterization and Table 4's commit/
//! coherence columns are precomputed here, and Figure 11 reads the traffic
//! breakdown.

use bulksc_net::{TrafficClass, TrafficStats};
use bulksc_stats::{per_100k, per_1k, percent};

use crate::system::System;

/// Everything one experiment run produces.
#[derive(Clone, Debug)]
pub struct SimReport {
    /// Configuration name (`SC`, `RC`, `SC++`, `BSCdypvt`, ...).
    pub model: String,
    /// Cycles the run took.
    pub cycles: u64,
    /// True if every core finished within the cycle bound.
    pub finished: bool,
    /// Useful (committed) dynamic instructions across all cores.
    pub retired: u64,
    /// Dynamic instructions wasted in squashes (BulkSC and SC++).
    pub squashed_instrs: u64,
    /// Squashed instructions as % of useful instructions (Table 3).
    pub squashed_pct: f64,

    // Table 3 — BulkSC characterization (zeroes for baselines).
    /// Chunks committed.
    pub chunks_committed: u64,
    /// Average read-set size (lines).
    pub read_set: f64,
    /// Average write-set size (lines).
    pub write_set: f64,
    /// Average private-write-set size (lines).
    pub priv_write_set: f64,
    /// Speculative read-set line displacements per 100k commits.
    pub read_displacements_per_100k: f64,
    /// Data served from the Private Buffer per 1k commits.
    pub priv_supplies_per_1k: f64,
    /// Aliasing-caused cache invalidations per 1k commits.
    pub extra_invs_per_1k: f64,
    /// Chunk squashes split by cause.
    pub alias_squashes: u64,
    /// True-sharing squashes.
    pub true_squashes: u64,

    // Table 4 — commit process and coherence operations.
    /// Directory entries looked up per commit during expansion.
    pub lookups_per_commit: f64,
    /// % of those lookups caused by aliasing.
    pub unnecessary_lookups_pct: f64,
    /// % of directory entry updates caused by aliasing.
    pub unnecessary_updates_pct: f64,
    /// Cores receiving the W signature, per commit.
    pub nodes_per_wsig: f64,
    /// Time-average number of W signatures pending in the arbiter.
    pub pending_w_sigs: f64,
    /// % of time the arbiter's W list is non-empty.
    pub nonempty_w_pct: f64,
    /// % of commits that had to supply the R signature.
    pub rsig_required_pct: f64,
    /// % of commits with an empty W signature.
    pub empty_w_pct: f64,

    /// Interconnect bytes by Figure 11 category.
    pub traffic: TrafficStats,
}

impl SimReport {
    /// Collapse a run into its metrics.
    pub fn collect(sys: &System) -> SimReport {
        let model = sys.config().model.name();
        let mut retired = 0u64;
        let mut squashed = 0u64;
        let mut chunks = 0u64;
        let mut alias_squashes = 0u64;
        let mut true_squashes = 0u64;
        let mut read_disp = 0u64;
        let mut priv_supplies = 0u64;
        let mut extra_invs = 0u64;
        let (mut rs, mut ws, mut ps) = (
            bulksc_stats::RunningMean::new(),
            bulksc_stats::RunningMean::new(),
            bulksc_stats::RunningMean::new(),
        );
        let mut empty_w = 0u64;
        for n in sys.nodes() {
            if let Some(b) = n.bulk_stats() {
                retired += b.retired;
                squashed += b.squashed_instrs;
                chunks += b.chunks_committed;
                alias_squashes += b.alias_squashes + b.overflow_squashes;
                true_squashes += b.true_squashes;
                read_disp += b.read_set_displacements;
                priv_supplies += b.priv_buffer_supplies;
                extra_invs += b.extra_cache_invs;
                rs.merge(&b.read_set);
                ws.merge(&b.write_set);
                ps.merge(&b.priv_write_set);
                empty_w += b.empty_w_commits;
            }
            if let Some(b) = n.baseline_stats() {
                retired += b.retired;
                squashed += b.squashed_instrs;
            }
        }

        let mut lookups = 0u64;
        let mut unnecessary_lookups = 0u64;
        let mut updates = 0u64;
        let mut unnecessary_updates = 0u64;
        let mut inv_targets = 0u64;
        for d in sys.dir_stats() {
            lookups += d.lookups;
            unnecessary_lookups += d.unnecessary_lookups;
            updates += d.updates;
            unnecessary_updates += d.unnecessary_updates;
            inv_targets += d.inv_targets;
        }

        let mut requests = 0u64;
        let mut rsig_required = 0u64;
        let mut grants = 0u64;
        let (mut pending_sum, mut nonempty_sum, mut arbs) = (0.0f64, 0.0f64, 0u32);
        for a in sys.arbiter_stats() {
            requests += a.requests;
            rsig_required += a.rsig_required;
            grants += a.grants;
            // The run may still be inside the stats window: finish a copy.
            let mut tw = a.pending_w;
            tw.finish(sys.cycles().max(1));
            pending_sum += tw.average();
            nonempty_sum += tw.nonzero_fraction();
            arbs += 1;
        }
        let _ = requests;

        SimReport {
            model,
            cycles: sys.cycles(),
            finished: sys.finished(),
            retired,
            squashed_instrs: squashed,
            squashed_pct: percent(squashed, retired.max(1)),
            chunks_committed: chunks,
            read_set: rs.mean(),
            write_set: ws.mean(),
            priv_write_set: ps.mean(),
            read_displacements_per_100k: per_100k(read_disp, chunks),
            priv_supplies_per_1k: per_1k(priv_supplies, chunks),
            extra_invs_per_1k: per_1k(extra_invs, chunks),
            alias_squashes,
            true_squashes,
            lookups_per_commit: if chunks == 0 { 0.0 } else { lookups as f64 / chunks as f64 },
            unnecessary_lookups_pct: percent(unnecessary_lookups, lookups),
            unnecessary_updates_pct: percent(unnecessary_updates, updates),
            nodes_per_wsig: if chunks == 0 { 0.0 } else { inv_targets as f64 / chunks as f64 },
            pending_w_sigs: if arbs == 0 { 0.0 } else { pending_sum / arbs as f64 },
            nonempty_w_pct: if arbs == 0 { 0.0 } else { 100.0 * nonempty_sum / arbs as f64 },
            rsig_required_pct: percent(rsig_required, grants.max(1)),
            empty_w_pct: percent(empty_w, chunks),
            traffic: *sys.traffic(),
        }
    }

    /// Bytes in one Figure 11 traffic category.
    pub fn traffic_bytes(&self, class: TrafficClass) -> u64 {
        self.traffic.bytes(class)
    }
}
