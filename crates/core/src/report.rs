//! Aggregated run metrics in the paper's units.
//!
//! [`SimReport::collect`] condenses a finished [`System`] into exactly the
//! quantities the paper's evaluation reports: Figure 9/10 speedups come
//! from `cycles`, Table 3's characterization and Table 4's commit/
//! coherence columns are precomputed here, and Figure 11 reads the traffic
//! breakdown.

use bulksc_net::{TrafficClass, TrafficStats};
use bulksc_stats::{per_100k, per_1k, percent, CycleLoss, Histogram};
use bulksc_trace::Json;

use crate::system::System;

/// Everything one experiment run produces.
#[derive(Clone, Debug)]
pub struct SimReport {
    /// Configuration name (`SC`, `RC`, `SC++`, `BSCdypvt`, ...).
    pub model: String,
    /// Cycles the run took.
    pub cycles: u64,
    /// True if every core finished within the cycle bound.
    pub finished: bool,
    /// Useful (committed) dynamic instructions across all cores.
    pub retired: u64,
    /// Dynamic instructions wasted in squashes (BulkSC and SC++).
    pub squashed_instrs: u64,
    /// Squashed instructions as % of useful instructions (Table 3).
    pub squashed_pct: f64,

    // Table 3 — BulkSC characterization (zeroes for baselines).
    /// Chunks committed.
    pub chunks_committed: u64,
    /// Average read-set size (lines).
    pub read_set: f64,
    /// Average write-set size (lines).
    pub write_set: f64,
    /// Average private-write-set size (lines).
    pub priv_write_set: f64,
    /// Speculative read-set line displacements per 100k commits.
    pub read_displacements_per_100k: f64,
    /// Data served from the Private Buffer per 1k commits.
    pub priv_supplies_per_1k: f64,
    /// Aliasing-caused cache invalidations per 1k commits.
    pub extra_invs_per_1k: f64,
    /// Chunk squashes split by cause.
    pub alias_squashes: u64,
    /// True-sharing squashes.
    pub true_squashes: u64,

    // Table 4 — commit process and coherence operations.
    /// Directory entries looked up per commit during expansion.
    pub lookups_per_commit: f64,
    /// % of those lookups caused by aliasing.
    pub unnecessary_lookups_pct: f64,
    /// % of directory entry updates caused by aliasing.
    pub unnecessary_updates_pct: f64,
    /// Cores receiving the W signature, per commit.
    pub nodes_per_wsig: f64,
    /// Time-average number of W signatures pending in the arbiter.
    pub pending_w_sigs: f64,
    /// % of time the arbiter's W list is non-empty.
    pub nonempty_w_pct: f64,
    /// % of commits that had to supply the R signature.
    pub rsig_required_pct: f64,
    /// % of commits with an empty W signature.
    pub empty_w_pct: f64,
    /// Permission-to-commit requests received by the (G-)arbiters (each
    /// denial forces a later retry, so requests exceed commits under
    /// contention).
    pub arb_requests: u64,
    /// Requests denied (collisions plus pre-arbitration lockouts).
    pub arb_denials: u64,
    /// Average denied-and-retried arbitrations per committed chunk.
    pub denials_per_commit: f64,

    /// Interconnect bytes by Figure 11 category.
    pub traffic: TrafficStats,

    // Chunk-lifecycle latency distributions (merged across cores; empty
    // for baseline models).
    /// Chunk open to first commit request.
    pub lat_execute: Histogram,
    /// First commit request to grant (retries included).
    pub lat_arbitration: Histogram,
    /// Grant to last DirDone at the arbiter (W list residency).
    pub lat_dir_update: Histogram,
    /// Grant to CommitComplete as seen by the core.
    pub lat_commit_visible: Histogram,
    /// L1 miss request to fill, across all cores (bulk and baseline).
    pub lat_l1_miss: Histogram,
    /// Per-core cycle-loss attribution (bulk cores only). Each table ends
    /// with a "tail" entry so its total is exactly `cycles`.
    pub cycle_loss: Vec<CycleLoss>,
}

/// Canonical label order for cycle-loss JSON, so same-shape runs emit
/// byte-comparable objects regardless of first-charge order.
const LOSS_LABELS: [&str; 6] = [
    "committed",
    "arb_denial",
    "w_sig_conflict",
    "r_sig_conflict",
    "displacement_overflow",
    "tail",
];

/// JSON encoding of a histogram: exact summary fields, the standard
/// percentiles, and the sparse bucket list (enough to rebuild it with
/// [`Histogram::from_parts`]).
pub fn histogram_json(h: &Histogram) -> Json {
    Json::obj([
        ("count", h.count().into()),
        ("sum", h.sum().into()),
        ("min", h.min().into()),
        ("max", h.max().into()),
        ("mean", h.mean().into()),
        ("p50", h.percentile(50.0).into()),
        ("p90", h.percentile(90.0).into()),
        ("p99", h.percentile(99.0).into()),
        (
            "buckets",
            Json::Arr(
                h.nonzero_buckets()
                    .map(|(i, c)| Json::Arr(vec![Json::U64(i as u64), c.into()]))
                    .collect(),
            ),
        ),
    ])
}

/// JSON encoding of one core's cycle-loss table, canonical labels first.
pub fn cycle_loss_json(l: &CycleLoss) -> Json {
    let mut obj = Json::Obj(Vec::new());
    for label in LOSS_LABELS {
        obj.push(label, l.get(label).into());
    }
    for &(label, cycles) in l.entries() {
        if !LOSS_LABELS.contains(&label) {
            obj.push(label, cycles.into());
        }
    }
    obj.push("total", l.total().into());
    obj
}

impl SimReport {
    /// Collapse a run into its metrics.
    pub fn collect(sys: &System) -> SimReport {
        let _prof = bulksc_prof::scope(bulksc_prof::Phase::Collect);
        let model = sys.config().model.name();
        let mut retired = 0u64;
        let mut squashed = 0u64;
        let mut chunks = 0u64;
        let mut alias_squashes = 0u64;
        let mut true_squashes = 0u64;
        let mut read_disp = 0u64;
        let mut priv_supplies = 0u64;
        let mut extra_invs = 0u64;
        let (mut rs, mut ws, mut ps) = (
            bulksc_stats::RunningMean::new(),
            bulksc_stats::RunningMean::new(),
            bulksc_stats::RunningMean::new(),
        );
        let mut empty_w = 0u64;
        let mut lat_execute = Histogram::new();
        let mut lat_arbitration = Histogram::new();
        let mut lat_commit_visible = Histogram::new();
        let mut lat_l1_miss = Histogram::new();
        let mut cycle_loss: Vec<CycleLoss> = Vec::new();
        for n in sys.nodes() {
            if let Some(b) = n.bulk_stats() {
                retired += b.retired;
                squashed += b.squashed_instrs;
                chunks += b.chunks_committed;
                alias_squashes += b.alias_squashes + b.overflow_squashes;
                true_squashes += b.true_squashes;
                read_disp += b.read_set_displacements;
                priv_supplies += b.priv_buffer_supplies;
                extra_invs += b.extra_cache_invs;
                rs.merge(&b.read_set);
                ws.merge(&b.write_set);
                ps.merge(&b.priv_write_set);
                empty_w += b.empty_w_commits;
                lat_execute.merge(&b.lat_execute);
                lat_arbitration.merge(&b.lat_arbitration);
                lat_commit_visible.merge(&b.lat_commit_visible);
                lat_l1_miss.merge(&b.lat_miss);
                // Close each core's attribution: whatever follows the last
                // charged lifecycle event (end-of-run drain, post-finish
                // idle) is the tail, making the total exactly the run.
                let mut loss = b.loss.clone();
                loss.charge("tail", sys.cycles().saturating_sub(loss.total()));
                cycle_loss.push(loss);
            }
            if let Some(b) = n.baseline_stats() {
                retired += b.retired;
                squashed += b.squashed_instrs;
                lat_l1_miss.merge(&b.lat_miss);
            }
        }

        let mut lookups = 0u64;
        let mut unnecessary_lookups = 0u64;
        let mut updates = 0u64;
        let mut unnecessary_updates = 0u64;
        let mut inv_targets = 0u64;
        for d in sys.dir_stats() {
            lookups += d.lookups;
            unnecessary_lookups += d.unnecessary_lookups;
            updates += d.updates;
            unnecessary_updates += d.unnecessary_updates;
            inv_targets += d.inv_targets;
        }

        let mut requests = 0u64;
        let mut denials = 0u64;
        let mut rsig_required = 0u64;
        let mut grants = 0u64;
        let mut lat_dir_update = Histogram::new();
        let (mut pending_sum, mut nonempty_sum, mut arbs) = (0.0f64, 0.0f64, 0u32);
        for a in sys.arbiter_stats() {
            requests += a.requests;
            denials += a.denials;
            rsig_required += a.rsig_required;
            grants += a.grants;
            lat_dir_update.merge(&a.dir_update_latency);
            // The run may still be inside the stats window: finish a copy.
            let mut tw = a.pending_w;
            tw.finish(sys.cycles().max(1));
            pending_sum += tw.average();
            nonempty_sum += tw.nonzero_fraction();
            arbs += 1;
        }
        if let Some(g) = sys.garbiter_stats() {
            requests += g.requests;
            denials += g.fast_denials + g.denials;
        }

        SimReport {
            model,
            cycles: sys.cycles(),
            finished: sys.finished(),
            retired,
            squashed_instrs: squashed,
            squashed_pct: percent(squashed, retired.max(1)),
            chunks_committed: chunks,
            read_set: rs.mean(),
            write_set: ws.mean(),
            priv_write_set: ps.mean(),
            read_displacements_per_100k: per_100k(read_disp, chunks),
            priv_supplies_per_1k: per_1k(priv_supplies, chunks),
            extra_invs_per_1k: per_1k(extra_invs, chunks),
            alias_squashes,
            true_squashes,
            lookups_per_commit: if chunks == 0 {
                0.0
            } else {
                lookups as f64 / chunks as f64
            },
            unnecessary_lookups_pct: percent(unnecessary_lookups, lookups),
            unnecessary_updates_pct: percent(unnecessary_updates, updates),
            nodes_per_wsig: if chunks == 0 {
                0.0
            } else {
                inv_targets as f64 / chunks as f64
            },
            pending_w_sigs: if arbs == 0 {
                0.0
            } else {
                pending_sum / arbs as f64
            },
            nonempty_w_pct: if arbs == 0 {
                0.0
            } else {
                100.0 * nonempty_sum / arbs as f64
            },
            rsig_required_pct: percent(rsig_required, grants.max(1)),
            empty_w_pct: percent(empty_w, chunks),
            arb_requests: requests,
            arb_denials: denials,
            denials_per_commit: if chunks == 0 {
                0.0
            } else {
                denials as f64 / chunks as f64
            },
            traffic: *sys.traffic(),
            lat_execute,
            lat_arbitration,
            lat_dir_update,
            lat_commit_visible,
            lat_l1_miss,
            cycle_loss,
        }
    }

    /// Bytes in one Figure 11 traffic category.
    pub fn traffic_bytes(&self, class: TrafficClass) -> u64 {
        self.traffic.bytes(class)
    }

    /// The full report as a JSON object (the machine-readable run
    /// artifact behind `--json`).
    pub fn to_json(&self) -> Json {
        let mut traffic = Json::obj([]);
        for class in TrafficClass::ALL {
            traffic.push(class.label(), self.traffic.bytes(class).into());
        }
        traffic.push("total_bytes", self.traffic.total().into());
        traffic.push("messages", self.traffic.messages().into());
        Json::obj([
            ("model", self.model.as_str().into()),
            ("cycles", self.cycles.into()),
            ("finished", self.finished.into()),
            ("retired", self.retired.into()),
            ("squashed_instrs", self.squashed_instrs.into()),
            ("squashed_pct", self.squashed_pct.into()),
            ("chunks_committed", self.chunks_committed.into()),
            ("read_set", self.read_set.into()),
            ("write_set", self.write_set.into()),
            ("priv_write_set", self.priv_write_set.into()),
            (
                "read_displacements_per_100k",
                self.read_displacements_per_100k.into(),
            ),
            ("priv_supplies_per_1k", self.priv_supplies_per_1k.into()),
            ("extra_invs_per_1k", self.extra_invs_per_1k.into()),
            ("alias_squashes", self.alias_squashes.into()),
            ("true_squashes", self.true_squashes.into()),
            ("lookups_per_commit", self.lookups_per_commit.into()),
            (
                "unnecessary_lookups_pct",
                self.unnecessary_lookups_pct.into(),
            ),
            (
                "unnecessary_updates_pct",
                self.unnecessary_updates_pct.into(),
            ),
            ("nodes_per_wsig", self.nodes_per_wsig.into()),
            ("pending_w_sigs", self.pending_w_sigs.into()),
            ("nonempty_w_pct", self.nonempty_w_pct.into()),
            ("rsig_required_pct", self.rsig_required_pct.into()),
            ("empty_w_pct", self.empty_w_pct.into()),
            ("arb_requests", self.arb_requests.into()),
            ("arb_denials", self.arb_denials.into()),
            ("denials_per_commit", self.denials_per_commit.into()),
            ("traffic", traffic),
            (
                "latency",
                Json::obj([
                    ("execute", histogram_json(&self.lat_execute)),
                    ("arbitration", histogram_json(&self.lat_arbitration)),
                    ("dir_update", histogram_json(&self.lat_dir_update)),
                    ("commit_visible", histogram_json(&self.lat_commit_visible)),
                    ("l1_miss", histogram_json(&self.lat_l1_miss)),
                ]),
            ),
            (
                "cycle_loss",
                Json::Arr(self.cycle_loss.iter().map(cycle_loss_json).collect()),
            ),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{Model, SystemConfig};
    use bulksc_sig::Addr;
    use bulksc_workloads::{Instr, ScriptOp, ScriptProgram, ThreadProgram};

    fn contended_run() -> System {
        // Two cores hammering the same line force arbiter denials.
        let prog = |v: u64| -> Box<dyn ThreadProgram> {
            let ops = (0..200)
                .map(|i| {
                    ScriptOp::Op(Instr::Store {
                        addr: Addr(0x100_0000),
                        value: v + i,
                    })
                })
                .collect();
            Box::new(ScriptProgram::new(ops))
        };
        let mut cfg = SystemConfig::cmp8(Model::Bulk(crate::config::BulkConfig::bsc_base()));
        cfg.cores = 2;
        cfg.budget = u64::MAX;
        let mut sys = System::new(cfg, vec![prog(1), prog(1000)]);
        assert!(sys.run(5_000_000), "contended run must finish");
        sys
    }

    #[test]
    fn cycle_loss_sums_to_run_cycles_per_core() {
        let sys = contended_run();
        let r = SimReport::collect(&sys);
        assert_eq!(r.cycle_loss.len(), 2, "one table per bulk core");
        for (core, loss) in r.cycle_loss.iter().enumerate() {
            assert_eq!(
                loss.total(),
                r.cycles,
                "core {core} attribution must partition the run: {loss:?}"
            );
            assert!(loss.get("committed") > 0, "core {core} did useful work");
        }
        // Contention costs cycles somewhere: conflict squashes or denials.
        let lost: u64 = r
            .cycle_loss
            .iter()
            .map(|l| l.get("arb_denial") + l.get("w_sig_conflict") + l.get("r_sig_conflict"))
            .sum();
        assert!(lost > 0, "contended run must lose cycles to contention");
    }

    #[test]
    fn latency_histograms_cover_every_commit() {
        let sys = contended_run();
        let r = SimReport::collect(&sys);
        // Arbitration and visibility latencies are recorded once per grant.
        assert_eq!(r.lat_arbitration.count(), r.chunks_committed);
        assert_eq!(r.lat_commit_visible.count(), r.chunks_committed);
        // Execute latency is recorded at the first commit request; squashed
        // chunks may re-request, so it at least covers every commit.
        assert!(r.lat_execute.count() >= r.chunks_committed);
        // Retries happen between first request and grant, so arbitration
        // latency on a contended run has a non-trivial tail.
        assert!(r.lat_arbitration.max() >= r.lat_arbitration.percentile(50.0));
        // Store-heavy chunks all carry W signatures through the directory.
        assert!(r.lat_dir_update.count() > 0);
        assert!(r.lat_dir_update.count() <= r.chunks_committed);
    }

    #[test]
    fn arbiter_requests_and_denials_are_reported() {
        let sys = contended_run();
        let r = SimReport::collect(&sys);
        assert!(r.chunks_committed >= 2);
        assert!(
            r.arb_requests >= r.chunks_committed,
            "every commit needed at least one request: {} < {}",
            r.arb_requests,
            r.chunks_committed
        );
        // Requests not granted were denied; the retry metric reflects them.
        assert_eq!(r.arb_denials, r.arb_requests - r.chunks_committed);
        let expected = r.arb_denials as f64 / r.chunks_committed as f64;
        assert!((r.denials_per_commit - expected).abs() < 1e-9);
    }

    #[test]
    fn report_serializes_to_valid_json() {
        let sys = contended_run();
        let r = SimReport::collect(&sys);
        let json = r.to_json().to_string();
        assert!(bulksc_trace::json::is_valid(&json), "invalid JSON: {json}");
        for key in [
            "\"model\":",
            "\"cycles\":",
            "\"arb_denials\":",
            "\"traffic\":",
            "\"Rd/Wr\":",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
    }
}
