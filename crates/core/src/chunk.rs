//! Chunks: the unit BulkSC enforces consistency at (paper §3).
//!
//! A [`Chunk`] is a dynamically-delimited group of consecutive
//! instructions that executes speculatively and appears to commit
//! atomically. Each carries:
//!
//! * its R / W (and Wpriv) signatures, maintained by the BDM;
//! * the speculative store buffer (word → value), which is both the
//!   forwarding source for the chunk's own loads and the payload applied
//!   to committed memory when the arbiter grants the commit;
//! * the program checkpoint to restore on a squash;
//! * the [`PrivateBuffer`] bookkeeping of §5.2.

use std::collections::{BTreeMap, HashSet};

use bulksc_net::ChunkTag;
use bulksc_sig::{Addr, LineAddr, SigMode, SignatureConfig, TrackedSig};
use bulksc_trace::Event;
use bulksc_workloads::{Instr, ThreadProgram};

/// Lifecycle of a chunk. Chunks leave the core's active list when the
/// commit is granted (their signatures are cleared at that point, §4.1.1),
/// so no state beyond `Arbitrating` appears here.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ChunkState {
    /// Instructions are still being fetched into the chunk.
    Open,
    /// The chunk boundary has been reached; instructions may still be
    /// in flight.
    Closed,
    /// A permission-to-commit request is with the arbiter.
    Arbitrating,
}

/// One speculative chunk.
pub struct Chunk {
    /// Machine-wide identity.
    pub tag: ChunkTag,
    /// Lifecycle state.
    pub state: ChunkState,
    /// Read-set signature.
    pub r: TrackedSig,
    /// Write-set signature (consistency-relevant writes only).
    pub w: TrackedSig,
    /// Private-write signature (§5).
    pub wpriv: TrackedSig,
    /// Speculative stores in program order: the last write per word wins.
    pub stores: BTreeMap<Addr, u64>,
    /// Order of first-writes (for deterministic commit application).
    pub store_order: Vec<(Addr, u64)>,
    /// Program checkpoint taken when the chunk opened.
    pub checkpoint: Box<dyn ThreadProgram>,
    /// Value pending delivery to the program at checkpoint time (a
    /// consuming load that retired just before the chunk opened).
    pub checkpoint_feed: Option<u64>,
    /// Instruction fetched but not yet windowed at checkpoint time.
    pub checkpoint_stash: Option<Instr>,
    /// Lines this chunk touched that have not yet arrived in the L1;
    /// the chunk cannot request commit until this is empty (§6: the line
    /// has to be received before the chunk commits).
    pub pending_lines: HashSet<LineAddr>,
    /// Dynamic instructions retired into this chunk.
    pub retired: u64,
    /// Lines of this chunk's read set displaced from the L1 (Table 3:
    /// harmless under BulkSC, counted).
    pub read_displacements: u64,
    /// Cycle the chunk opened (latency accounting: the execute phase runs
    /// from here to the first commit request).
    pub t_start: u64,
    /// Cycle the first commit-permission request was sent, if any
    /// (arbitration latency counts retries from this first attempt).
    pub t_first_request: Option<u64>,
    /// Value-trace events buffered at retire (only while a tracer is
    /// attached), emitted in one block when the commit is granted — so a
    /// squash discards them along with the rest of the chunk and the
    /// trace never shows speculative work.
    pub accesses: Vec<Event>,
}

impl Chunk {
    /// A fresh open chunk with empty signatures.
    pub fn new(
        tag: ChunkTag,
        sig: &SignatureConfig,
        mode: SigMode,
        checkpoint: Box<dyn ThreadProgram>,
    ) -> Self {
        Chunk {
            tag,
            state: ChunkState::Open,
            r: TrackedSig::new(sig, mode),
            w: TrackedSig::new(sig, mode),
            wpriv: TrackedSig::new(sig, mode),
            stores: BTreeMap::new(),
            store_order: Vec::new(),
            checkpoint,
            checkpoint_feed: None,
            checkpoint_stash: None,
            pending_lines: HashSet::new(),
            retired: 0,
            read_displacements: 0,
            t_start: 0,
            t_first_request: None,
            accesses: Vec::new(),
        }
    }

    /// Record a speculative store.
    pub fn push_store(&mut self, addr: Addr, value: u64) {
        self.stores.insert(addr, value);
        self.store_order.push((addr, value));
    }

    /// The newest speculative value this chunk holds for `addr`, if any.
    pub fn forward(&self, addr: Addr) -> Option<u64> {
        self.stores.get(&addr).copied()
    }

    /// True if an incoming committing W signature collides with this
    /// chunk (bulk disambiguation: `(Wc ∩ R) ∪ (Wc ∩ W)` non-empty).
    pub fn collides_with(&self, wc: &TrackedSig) -> bool {
        wc.intersects(&self.r) || wc.intersects(&self.w)
    }

    /// Like [`Chunk::collides_with`] but against the exact shadows: would
    /// an alias-free machine have collided? Distinguishes true-sharing
    /// squashes from aliasing squashes (Table 3).
    pub fn collides_exactly_with(&self, wc: &TrackedSig) -> bool {
        wc.intersects_exact(&self.r) || wc.intersects_exact(&self.w)
    }

    /// True if the chunk is closed, fully retired, and all its lines have
    /// arrived: it may request commit.
    pub fn ready_to_commit(&self) -> bool {
        self.state == ChunkState::Closed && self.pending_lines.is_empty()
    }
}

impl std::fmt::Debug for Chunk {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Chunk")
            .field("tag", &self.tag.to_string())
            .field("state", &self.state)
            .field("retired", &self.retired)
            .field("r", &self.r.len())
            .field("w", &self.w.len())
            .field("wpriv", &self.wpriv.len())
            .field("pending", &self.pending_lines.len())
            .finish()
    }
}

/// The Private Buffer of §5.2: per-core bookkeeping of lines whose old
/// version is retained so their writeback (and W-signature pollution) can
/// be skipped.
///
/// Values are not stored here: in this simulator the committed value of a
/// dirty non-speculative line is exactly what the global value store
/// already holds, so the buffer tracks membership, capacity, and the
/// "add back to W" protocol.
#[derive(Clone, Debug)]
pub struct PrivateBuffer {
    lines: Vec<LineAddr>,
    capacity: usize,
}

impl PrivateBuffer {
    /// An empty buffer holding up to `capacity` lines (paper: ≈24).
    pub fn new(capacity: u32) -> Self {
        PrivateBuffer {
            lines: Vec::new(),
            capacity: capacity as usize,
        }
    }

    /// True if `line`'s pre-image is retained here.
    pub fn contains(&self, line: LineAddr) -> bool {
        self.lines.contains(&line)
    }

    /// Record `line`'s pre-image. Returns `false` if the buffer is full
    /// (the caller must fall back to the writeback-and-W path).
    pub fn insert(&mut self, line: LineAddr) -> bool {
        if self.contains(line) {
            return true;
        }
        if self.lines.len() >= self.capacity {
            return false;
        }
        self.lines.push(line);
        true
    }

    /// Remove `line` (external request took the old version, §5.2).
    pub fn remove(&mut self, line: LineAddr) -> bool {
        match self.lines.iter().position(|&l| l == line) {
            Some(i) => {
                self.lines.remove(i);
                true
            }
            None => false,
        }
    }

    /// Number of retained lines.
    pub fn len(&self) -> usize {
        self.lines.len()
    }

    /// True if no lines are retained.
    pub fn is_empty(&self) -> bool {
        self.lines.is_empty()
    }

    /// Drop everything (commit granted or chunk squashed).
    pub fn clear(&mut self) {
        self.lines.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bulksc_workloads::ScriptProgram;

    fn chunk(tag_seq: u64) -> Chunk {
        Chunk::new(
            ChunkTag {
                core: 0,
                seq: tag_seq,
            },
            &SignatureConfig::default(),
            SigMode::Bloom,
            Box::new(ScriptProgram::new(vec![])),
        )
    }

    #[test]
    fn store_forwarding_last_write_wins() {
        let mut c = chunk(1);
        c.push_store(Addr(8), 1);
        c.push_store(Addr(8), 2);
        c.push_store(Addr(9), 7);
        assert_eq!(c.forward(Addr(8)), Some(2));
        assert_eq!(c.forward(Addr(9)), Some(7));
        assert_eq!(c.forward(Addr(10)), None);
        assert_eq!(c.store_order.len(), 3);
    }

    #[test]
    fn collision_uses_r_and_w() {
        let cfg = SignatureConfig::default();
        let mut c = chunk(1);
        c.r.insert(LineAddr(5));
        c.w.insert(LineAddr(9));
        let mut wc = TrackedSig::new(&cfg, SigMode::Bloom);
        wc.insert(LineAddr(5));
        assert!(c.collides_with(&wc));
        assert!(c.collides_exactly_with(&wc));
        let mut wc2 = TrackedSig::new(&cfg, SigMode::Bloom);
        wc2.insert(LineAddr(9));
        assert!(c.collides_with(&wc2), "write-write collisions count too");
        let mut wc3 = TrackedSig::new(&cfg, SigMode::Bloom);
        wc3.insert(LineAddr(1_000_003));
        assert!(!c.collides_exactly_with(&wc3));
    }

    #[test]
    fn wpriv_does_not_collide() {
        // Private writes are exempt from disambiguation (§5): only R and W
        // participate in collision checks.
        let cfg = SignatureConfig::default();
        let mut c = chunk(1);
        c.wpriv.insert(LineAddr(5));
        let mut wc = TrackedSig::new(&cfg, SigMode::Bloom);
        wc.insert(LineAddr(5));
        assert!(!c.collides_exactly_with(&wc));
    }

    #[test]
    fn readiness_requires_closed_and_no_pending() {
        let mut c = chunk(1);
        assert!(!c.ready_to_commit());
        c.state = ChunkState::Closed;
        assert!(c.ready_to_commit());
        c.pending_lines.insert(LineAddr(3));
        assert!(!c.ready_to_commit());
        c.pending_lines.clear();
        assert!(c.ready_to_commit());
    }

    #[test]
    fn private_buffer_capacity_and_membership() {
        let mut b = PrivateBuffer::new(2);
        assert!(b.is_empty());
        assert!(b.insert(LineAddr(1)));
        assert!(b.insert(LineAddr(1)), "re-insert is idempotent");
        assert!(b.insert(LineAddr(2)));
        assert!(!b.insert(LineAddr(3)), "full buffer rejects");
        assert_eq!(b.len(), 2);
        assert!(b.contains(LineAddr(1)));
        assert!(b.remove(LineAddr(1)));
        assert!(!b.remove(LineAddr(1)));
        assert!(b.insert(LineAddr(3)), "room again after removal");
        b.clear();
        assert!(b.is_empty());
    }

    #[test]
    fn debug_is_informative() {
        let c = chunk(3);
        let s = format!("{c:?}");
        assert!(s.contains("C0#3"));
    }
}
