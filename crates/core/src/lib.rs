//! BulkSC: Bulk Enforcement of Sequential Consistency (ISCA 2007) — a
//! from-scratch reproduction.
//!
//! This crate is the paper's primary contribution: a chip multiprocessor
//! that provides sequential consistency by executing dynamically-built
//! *chunks* of instructions that commit atomically, with signatures,
//! checkpoints, and a commit arbiter doing the enforcement that
//! conventional SC machines do with load-store-queue snooping.
//!
//! The crate assembles the substrates from the rest of the workspace:
//!
//! * [`chunk`] — chunks, their signatures and store buffers, and the
//!   Private Buffer of §5.2;
//! * [`node`] — the BulkSC core (§4.1): checkpointed execution, wait-free
//!   stores, bulk disambiguation/invalidation, squash with exponential
//!   backoff and pre-arbitration;
//! * [`arbiter`] / [`garbiter`] — the commit arbiter (§4.2), the RSig
//!   optimization, and the distributed G-arbiter design (§4.2.3);
//! * [`system`] — the whole machine of Figure 5, including the baseline
//!   SC/RC/SC++ cores for the paper's comparisons;
//! * [`config`] — Table 2 presets (`BSCbase`, `BSCdypvt`, `BSCstpvt`,
//!   `BSCexact`);
//! * [`report`] — run metrics in the units of Tables 3–4 and Figures 9–11.
//!
//! # Example
//!
//! ```
//! use bulksc::{BulkConfig, Model, SimReport, System, SystemConfig};
//! use bulksc_workloads::{by_name, SyntheticApp, ThreadProgram};
//!
//! let mut cfg = SystemConfig::cmp8(Model::Bulk(BulkConfig::bsc_dypvt()));
//! cfg.budget = 3_000; // tiny demo run
//! let app = by_name("lu").expect("catalog app");
//! let programs: Vec<Box<dyn ThreadProgram>> = (0..8)
//!     .map(|t| Box::new(SyntheticApp::new(app, t, 8, 42)) as Box<dyn ThreadProgram>)
//!     .collect();
//! let mut sys = System::new(cfg, programs);
//! assert!(sys.run(20_000_000), "run finished");
//! let report = SimReport::collect(&sys);
//! assert!(report.chunks_committed > 0);
//! ```

pub mod arbiter;
pub mod chunk;
pub mod config;
pub mod garbiter;
pub mod node;
pub mod report;
pub mod system;

pub use arbiter::{ArbStats, Arbiter};
pub use chunk::{Chunk, ChunkState, PrivateBuffer};
pub use config::{BulkConfig, Model, PrivateMode, SystemConfig};
pub use garbiter::{GArbStats, GArbiter};
pub use node::{BulkNode, BulkStats};
pub use report::SimReport;
pub use system::{CoreNode, System};
