//! Whole-machine integration tests of BulkSC: chunks commit, values flow,
//! synchronization works, SC holds on litmus tests, and forward progress
//! survives adversarial contention.

use bulksc::{BulkConfig, Model, SimReport, System, SystemConfig};
use bulksc_cpu::BaselineModel;
use bulksc_sig::Addr;
use bulksc_workloads::{
    by_name, litmus, Instr, ScriptOp, ScriptProgram, SyntheticApp, ThreadProgram,
};

fn script(ops: Vec<ScriptOp>) -> Box<dyn ThreadProgram> {
    Box::new(ScriptProgram::new(ops))
}

fn idle() -> Box<dyn ThreadProgram> {
    script(vec![ScriptOp::Op(Instr::Compute(1))])
}

fn all_bulk_configs() -> Vec<BulkConfig> {
    vec![
        BulkConfig::bsc_base(),
        BulkConfig::bsc_dypvt(),
        BulkConfig::bsc_stpvt(),
        BulkConfig::bsc_exact(),
    ]
}

fn sys2(b: BulkConfig, t0: Box<dyn ThreadProgram>, t1: Box<dyn ThreadProgram>) -> System {
    let mut cfg = SystemConfig::cmp8(Model::Bulk(b));
    cfg.cores = 2;
    cfg.budget = u64::MAX;
    System::new(cfg, vec![t0, t1])
}

fn run_or_dump(sys: &mut System, max: u64, what: &str) {
    if !sys.run(max) {
        panic!("{what} did not finish:\n{}", sys.debug_state());
    }
}

#[test]
fn single_core_chunked_execution_commits() {
    for b in all_bulk_configs() {
        let name = Model::Bulk(b.clone()).name();
        let t0 = script(vec![
            ScriptOp::Op(Instr::Compute(50)),
            ScriptOp::Op(Instr::Store {
                addr: Addr(0x100_0000),
                value: 7,
            }),
            ScriptOp::Op(Instr::Store {
                addr: Addr(0x100_0008),
                value: 8,
            }),
            ScriptOp::Record(Addr(0x100_0000)),
        ]);
        let mut sys = sys2(b, t0, idle());
        run_or_dump(&mut sys, 1_000_000, &name);
        assert_eq!(sys.values().read(Addr(0x100_0000)), 7, "{name}");
        assert_eq!(sys.values().read(Addr(0x100_0008)), 8, "{name}");
        assert_eq!(
            sys.observations()[0],
            vec![7],
            "{name}: own store forwarded"
        );
        let r = SimReport::collect(&sys);
        assert!(r.chunks_committed >= 1, "{name}");
    }
}

#[test]
fn values_flow_between_bulk_cores() {
    for b in all_bulk_configs() {
        let name = Model::Bulk(b.clone()).name();
        let t0 = script(vec![
            ScriptOp::Op(Instr::Store {
                addr: Addr(0x100_0000),
                value: 55,
            }),
            ScriptOp::Op(Instr::Store {
                addr: Addr(0x100_0040),
                value: 1,
            }),
        ]);
        let t1 = script(vec![
            ScriptOp::SpinUntilEq {
                addr: Addr(0x100_0040),
                value: 1,
                pad: 8,
            },
            ScriptOp::Record(Addr(0x100_0000)),
        ]);
        let mut sys = sys2(b, t0, t1);
        run_or_dump(&mut sys, 5_000_000, &name);
        // Chunk atomicity: the flag and the data commit together (same
        // chunk), so seeing the flag means seeing the data.
        assert_eq!(sys.observations()[1], vec![55], "{name}");
    }
}

#[test]
fn bulk_is_sequentially_consistent_on_litmus() {
    for b in [
        BulkConfig::bsc_base(),
        BulkConfig::bsc_dypvt(),
        BulkConfig::bsc_exact(),
    ] {
        let name = Model::Bulk(b.clone()).name();
        for test in litmus::catalog() {
            for skew in 0..10u32 {
                let skews: Vec<u32> = (0..test.threads())
                    .map(|t| (skew * 13 + t as u32 * 7) % 31)
                    .collect();
                let mut cfg = SystemConfig::cmp8(Model::Bulk(b.clone()));
                cfg.cores = test.threads() as u32;
                cfg.budget = u64::MAX;
                let mut sys = System::new(cfg, test.programs(&skews));
                run_or_dump(&mut sys, 5_000_000, &format!("{name}/{}", test.name));
                let obs = sys.observations();
                assert!(
                    !(test.forbidden)(&obs),
                    "{name}/{}: forbidden outcome {obs:?} (skew {skew})",
                    test.name
                );
            }
        }
    }
}

#[test]
fn locks_serialize_under_bulk() {
    let lock = Addr(0x10_0000);
    let counter = Addr(0x100_0000);
    let incr = |tag: u64| {
        script(vec![
            ScriptOp::AcquireLock(lock),
            ScriptOp::Record(counter),
            ScriptOp::Op(Instr::Store {
                addr: counter,
                value: tag,
            }),
            ScriptOp::ReleaseLock(lock),
        ])
    };
    for b in all_bulk_configs() {
        let name = Model::Bulk(b.clone()).name();
        let mut sys = sys2(b, incr(1), incr(2));
        run_or_dump(&mut sys, 10_000_000, &name);
        let obs = sys.observations();
        let (a, bb) = (obs[0][0], obs[1][0]);
        assert!(
            (a == 0 && bb == 1) || (bb == 0 && a == 2),
            "{name}: critical sections interleaved: {a} {bb}"
        );
        assert_eq!(sys.values().read(lock), 0, "{name}: lock released");
    }
}

#[test]
fn adversarial_spin_makes_progress() {
    // §3.3's worst case: spinning processors whose spin loop *writes* a
    // variable the key processor reads. Chunk-size backoff plus
    // pre-arbitration must guarantee the key processor completes.
    let flag = Addr(0x100_0000);
    let noise = Addr(0x100_0004); // same line as flag: maximum collision
    let key = script(vec![
        ScriptOp::Op(Instr::Compute(200)),
        ScriptOp::Record(noise),
        ScriptOp::Op(Instr::Store {
            addr: flag,
            value: 1,
        }),
    ]);
    let spinner = || {
        let mut ops = Vec::new();
        for i in 0..3000u64 {
            ops.push(ScriptOp::Op(Instr::Store {
                addr: noise,
                value: i,
            }));
            ops.push(ScriptOp::Op(Instr::Load {
                addr: flag,
                consume: false,
            }));
            ops.push(ScriptOp::Op(Instr::Compute(4)));
        }
        script(ops)
    };
    let mut cfg = SystemConfig::cmp8(Model::Bulk(BulkConfig::bsc_dypvt()));
    cfg.cores = 3;
    cfg.budget = u64::MAX;
    let mut sys = System::new(cfg, vec![key, spinner(), spinner()]);
    run_or_dump(&mut sys, 20_000_000, "adversarial spin");
    assert_eq!(sys.values().read(flag), 1, "key processor completed");
}

#[test]
fn synthetic_apps_run_on_all_configs() {
    for b in all_bulk_configs() {
        let name = Model::Bulk(b.clone()).name();
        let app = by_name("radiosity").unwrap();
        let mut cfg = SystemConfig::cmp8(Model::Bulk(b));
        cfg.budget = 6_000;
        let programs: Vec<Box<dyn ThreadProgram>> = (0..8)
            .map(|t| Box::new(SyntheticApp::new(app, t, 8, 7)) as Box<dyn ThreadProgram>)
            .collect();
        let mut sys = System::new(cfg, programs);
        run_or_dump(&mut sys, 30_000_000, &name);
        let r = SimReport::collect(&sys);
        assert!(r.chunks_committed >= 8, "{name}: {r:?}");
        assert!(r.retired >= 8 * 6_000, "{name}");
    }
}

#[test]
fn baselines_run_through_the_system_wrapper() {
    for m in [BaselineModel::Sc, BaselineModel::Rc, BaselineModel::Scpp] {
        let app = by_name("lu").unwrap();
        let mut cfg = SystemConfig::cmp8(Model::Baseline(m));
        cfg.budget = 4_000;
        let programs: Vec<Box<dyn ThreadProgram>> = (0..8)
            .map(|t| Box::new(SyntheticApp::new(app, t, 8, 7)) as Box<dyn ThreadProgram>)
            .collect();
        let mut sys = System::new(cfg, programs);
        run_or_dump(&mut sys, 30_000_000, &format!("{m:?}"));
        let r = SimReport::collect(&sys);
        assert!(r.retired >= 8 * 4_000, "{m:?}");
        assert!(r.cycles > 0);
    }
}

#[test]
fn distributed_arbiter_commits_multi_range_chunks() {
    let b = BulkConfig::bsc_dypvt().with_arbiters(4);
    let mut cfg = SystemConfig::cmp8(Model::Bulk(b));
    cfg.cores = 4;
    cfg.dirs = 4;
    cfg.budget = u64::MAX;
    // Each thread writes lines across several ranges, then reads another
    // thread's output after a flag.
    let writer = |base: u64| {
        script(vec![
            ScriptOp::Op(Instr::Store {
                addr: Addr(0x100_0000 + base * 4),
                value: base + 1,
            }),
            ScriptOp::Op(Instr::Store {
                addr: Addr(0x100_0020 + base * 4),
                value: base + 2,
            }),
            ScriptOp::Op(Instr::Store {
                addr: Addr(0x100_0040 + base * 4),
                value: base + 3,
            }),
        ])
    };
    let programs: Vec<Box<dyn ThreadProgram>> = (0..4).map(|i| writer(i as u64 * 64)).collect();
    let mut sys = System::new(cfg, programs);
    run_or_dump(&mut sys, 5_000_000, "distributed arbiter");
    for i in 0..4u64 {
        assert_eq!(sys.values().read(Addr(0x100_0000 + i * 64 * 4)), i * 64 + 1);
    }
    let r = SimReport::collect(&sys);
    assert!(r.chunks_committed >= 4);
}

#[test]
fn io_serializes_against_chunks() {
    let t0 = script(vec![
        ScriptOp::Op(Instr::Store {
            addr: Addr(0x100_0000),
            value: 1,
        }),
        ScriptOp::Op(Instr::Io),
        ScriptOp::Op(Instr::Store {
            addr: Addr(0x100_0040),
            value: 2,
        }),
    ]);
    let mut sys = sys2(BulkConfig::bsc_dypvt(), t0, idle());
    run_or_dump(&mut sys, 2_000_000, "io");
    assert_eq!(sys.values().read(Addr(0x100_0040)), 2);
    let io_ops: u64 = sys
        .nodes()
        .iter()
        .filter_map(|n| n.bulk_stats())
        .map(|s| s.io_ops)
        .sum();
    assert_eq!(io_ops, 1);
}

#[test]
fn rsig_optimization_reduces_rdsig_traffic() {
    use bulksc_net::TrafficClass;
    let app = by_name("ocean").unwrap();
    let run = |b: BulkConfig| {
        let mut cfg = SystemConfig::cmp8(Model::Bulk(b));
        cfg.budget = 8_000;
        let programs: Vec<Box<dyn ThreadProgram>> = (0..8)
            .map(|t| Box::new(SyntheticApp::new(app, t, 8, 3)) as Box<dyn ThreadProgram>)
            .collect();
        let mut sys = System::new(cfg, programs);
        assert!(sys.run(50_000_000), "run finished");
        SimReport::collect(&sys)
    };
    let with = run(BulkConfig::bsc_dypvt());
    let without = run(BulkConfig::bsc_dypvt().without_rsig());
    assert!(
        with.traffic_bytes(TrafficClass::RdSig) < without.traffic_bytes(TrafficClass::RdSig),
        "RSig opt must cut RdSig bytes: {} vs {}",
        with.traffic_bytes(TrafficClass::RdSig),
        without.traffic_bytes(TrafficClass::RdSig)
    );
}

#[test]
fn report_has_sane_table_metrics() {
    let app = by_name("fft").unwrap();
    let mut cfg = SystemConfig::cmp8(Model::Bulk(BulkConfig::bsc_dypvt()));
    cfg.budget = 10_000;
    let programs: Vec<Box<dyn ThreadProgram>> = (0..8)
        .map(|t| Box::new(SyntheticApp::new(app, t, 8, 11)) as Box<dyn ThreadProgram>)
        .collect();
    let mut sys = System::new(cfg, programs);
    run_or_dump(&mut sys, 50_000_000, "fft report");
    let r = SimReport::collect(&sys);
    assert!(r.finished);
    assert!(r.read_set > 1.0, "fft reads shared data: {r:?}");
    assert!(r.priv_write_set > 1.0, "fft rewrites private lines");
    assert!(r.empty_w_pct <= 100.0);
    assert!(r.traffic.total() > 0);
}
