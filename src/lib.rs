//! BulkSC reproduction — workspace façade.
//!
//! This crate exists to host the repository-level examples (`examples/`)
//! and the cross-crate integration tests (`tests/`). The functionality
//! lives in the workspace crates:
//!
//! * [`bulksc`] — the paper's contribution: chunks, arbiter, system.
//! * [`bulksc_sig`] — Bulk signatures.
//! * [`bulksc_mem`] — caches, directory, DirBDM.
//! * [`bulksc_net`] — interconnect and traffic accounting.
//! * [`bulksc_cpu`] — core engine and the SC/RC/SC++ baselines.
//! * [`bulksc_workloads`] — synthetic applications and litmus tests.
//! * [`bulksc_stats`] — statistics plumbing.

pub use bulksc;
pub use bulksc_cpu;
pub use bulksc_mem;
pub use bulksc_net;
pub use bulksc_sig;
pub use bulksc_stats;
pub use bulksc_workloads;
