//! End-to-end exercise of the `bulksc-check` SC conformance oracle
//! against the live timing simulator:
//!
//! * every litmus test under every BulkSC preset (and the SC baseline)
//!   must produce a value trace the oracle *certifies* — the predicate
//!   checks a handful of hand-picked registers, the oracle checks every
//!   access of the run;
//! * an injected commit-arbitration bug (`commit_without_arbitration`)
//!   must be *caught*, with a report naming the offending accesses;
//! * RC, which is not SC, must be flagged too — so the oracle is not
//!   vacuous at the whole-trace level either.

use bulksc::{BulkConfig, Model, System, SystemConfig};
use bulksc_check::{CheckError, CollectingTracer, ValueTrace, ViolationKind};
use bulksc_cpu::BaselineModel;
use bulksc_sig::Addr;
use bulksc_trace::TraceHandle;
use bulksc_workloads::{litmus, Instr, ScriptOp, ScriptProgram, ThreadProgram};

/// Run `programs` under `model` with value tracing on; return the trace.
fn run_traced(
    model: Model,
    dirs: u32,
    programs: Vec<Box<dyn ThreadProgram>>,
) -> (ValueTrace, System) {
    let mut cfg = SystemConfig::cmp8(model);
    cfg.cores = programs.len() as u32;
    cfg.dirs = dirs;
    cfg.budget = u64::MAX;
    let mut sys = System::new(cfg, programs);
    let tracer = CollectingTracer::shared();
    let mut trace = TraceHandle::off();
    trace.attach(tracer.clone());
    sys.set_tracer(trace);
    assert!(
        sys.run(10_000_000),
        "did not finish:\n{}",
        sys.debug_state()
    );
    let t = tracer.borrow_mut().take();
    (t, sys)
}

#[test]
fn every_litmus_run_is_certified_by_the_oracle() {
    // The contended sweep of the litmus catalog: presets plus small-chunk
    // and distributed-arbiter configurations that maximize commit traffic
    // on the shared lines the tests fight over.
    let configs: Vec<(Model, u32)> = vec![
        (Model::Baseline(BaselineModel::Sc), 1),
        (Model::Bulk(BulkConfig::bsc_base()), 1),
        (Model::Bulk(BulkConfig::bsc_dypvt()), 1),
        (Model::Bulk(BulkConfig::bsc_exact()), 1),
        (Model::Bulk(BulkConfig::bsc_base().with_chunk_size(16)), 1),
        (Model::Bulk(BulkConfig::bsc_dypvt().with_chunk_size(64)), 1),
        (
            Model::Bulk(BulkConfig::bsc_dypvt().with_chunk_size(64).with_arbiters(4)),
            4,
        ),
    ];
    for (model, dirs) in configs {
        for test in litmus::catalog() {
            for round in 0..4u32 {
                let skews: Vec<u32> = (0..test.threads())
                    .map(|t| (round * 13 + t as u32 * 7) % 23)
                    .collect();
                let (trace, sys) = run_traced(model.clone(), dirs, test.programs(&skews));
                let obs = sys.observations();
                assert!(
                    !(test.forbidden)(&obs),
                    "{} under {}: forbidden outcome {obs:?}",
                    test.name,
                    model.name()
                );
                assert!(
                    !trace.accesses.is_empty(),
                    "{} under {}: empty value trace",
                    test.name,
                    model.name()
                );
                if let Err(e) = trace.verify() {
                    panic!(
                        "{} under {} (round {round}): oracle rejected the run:\n{e}",
                        test.name,
                        model.name()
                    );
                }
            }
        }
    }
}

/// Store-buffering with *plain* (non-consuming) loads: the pipeline is
/// free to satisfy the load while the store is still awaiting commit, so
/// only the commit arbitration keeps the execution SC. Warm reads bring
/// both lines into each L1 so the critical loads hit stale data when the
/// invalidation broadcast goes missing.
fn sb_plain(skew: u32) -> Vec<Box<dyn ThreadProgram>> {
    let x = Addr(0x100);
    let y = Addr(0x1100); // different cache lines
    let prog = |mine: Addr, other: Addr, skew: u32| -> Box<dyn ThreadProgram> {
        Box::new(ScriptProgram::new(vec![
            ScriptOp::WarmRead(mine),
            ScriptOp::WarmRead(other),
            ScriptOp::Op(Instr::Compute(40 + skew)),
            ScriptOp::Op(Instr::Store {
                addr: mine,
                value: 1,
            }),
            ScriptOp::Op(Instr::Load {
                addr: other,
                consume: false,
            }),
        ]))
    };
    vec![prog(x, y, 0), prog(y, x, skew)]
}

#[test]
fn injected_commit_bug_is_caught_with_named_accesses() {
    // A chunk that self-grants its commit never broadcasts its write
    // signature, so conflicting chunks are never squashed: classic store
    // buffering leaks through. The oracle must catch it and name the
    // four accesses of the cycle.
    let mut faulty = BulkConfig::bsc_base();
    faulty.commit_without_arbitration = true;

    let mut caught = None;
    for skew in 0..8u32 {
        let (trace, _) = run_traced(Model::Bulk(faulty.clone()), 1, sb_plain(skew));
        match trace.verify() {
            Ok(_) => continue,
            Err(CheckError::Violation(v)) => {
                caught = Some(*v);
                break;
            }
            Err(CheckError::Malformed(m)) => panic!("malformed trace: {m}"),
        }
    }
    let v = caught.expect(
        "commit_without_arbitration never produced an SC violation \
         the oracle could see",
    );
    assert_eq!(v.kind, ViolationKind::Cycle);
    assert!(
        v.accesses.len() >= 2,
        "the report names the offending accesses"
    );
    assert!(
        v.report.contains("--"),
        "the report shows the cycle's edges:\n{}",
        v.report
    );
    // Both fighting locations appear among the named accesses.
    let addrs: Vec<u64> = v.accesses.iter().map(|a| a.addr).collect();
    assert!(
        addrs.contains(&0x100) && addrs.contains(&0x1100),
        "cycle spans both contended lines: {addrs:?}\n{}",
        v.report
    );

    // The same program under the un-faulted config certifies cleanly.
    for skew in 0..8u32 {
        let (trace, _) = run_traced(Model::Bulk(BulkConfig::bsc_base()), 1, sb_plain(skew));
        trace
            .verify()
            .unwrap_or_else(|e| panic!("healthy config must certify (skew {skew}):\n{e}"));
    }
}

#[test]
fn rc_store_buffering_is_flagged_so_the_oracle_is_not_vacuous() {
    let mut seen = false;
    for skew in 0..16u32 {
        let (trace, _) = run_traced(Model::Baseline(BaselineModel::Rc), 1, sb_plain(skew));
        match trace.verify() {
            Ok(_) => continue,
            Err(CheckError::Violation(v)) => {
                assert_eq!(v.kind, ViolationKind::Cycle);
                seen = true;
                break;
            }
            Err(CheckError::Malformed(m)) => panic!("malformed trace: {m}"),
        }
    }
    assert!(seen, "RC never tripped the oracle on store buffering");
}
