//! Property-based whole-system tests: randomized multithreaded programs
//! executed on the BulkSC machine must respect per-location coherence and
//! atomicity invariants that every sequentially consistent machine
//! satisfies.

use bulksc::{BulkConfig, Model, System, SystemConfig};
use bulksc_sig::Addr;
use bulksc_workloads::{Instr, RmwOp, ScriptOp, ScriptProgram, ThreadProgram};
use proptest::prelude::*;

/// A small random program: stores tagged with unique values, RMW
/// increments, loads, compute padding.
fn program_strategy(thread: u64) -> impl Strategy<Value = Vec<ScriptOp>> {
    let op = prop_oneof![
        (0u64..8, 1u64..1000).prop_map(move |(slot, v)| ScriptOp::Op(Instr::Store {
            addr: Addr(0x100_0000 + slot * 64),
            value: thread * 1_000_000 + v,
        })),
        (0u64..8).prop_map(|slot| ScriptOp::Op(Instr::Load {
            addr: Addr(0x100_0000 + slot * 64),
            consume: false,
        })),
        Just(ScriptOp::Op(Instr::Rmw { addr: Addr(0x200_0000), op: RmwOp::FetchAdd(1) })),
        (1u32..40).prop_map(|n| ScriptOp::Op(Instr::Compute(n))),
        (0u64..8).prop_map(|slot| ScriptOp::Record(Addr(0x100_0000 + slot * 64))),
    ];
    prop::collection::vec(op, 1..25)
}

fn rmw_count(ops: &[ScriptOp]) -> u64 {
    ops.iter()
        .filter(|o| matches!(o, ScriptOp::Op(Instr::Rmw { .. })))
        .count() as u64
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// Every final memory value is a value someone actually wrote, and
    /// the shared RMW counter is exact (chunk atomicity).
    #[test]
    fn random_programs_preserve_write_provenance_and_atomicity(
        progs in (program_strategy(1), program_strategy(2), program_strategy(3)),
    ) {
        let (p1, p2, p3) = progs;
        let expected_counter = rmw_count(&p1) + rmw_count(&p2) + rmw_count(&p3);
        let mut written: Vec<Vec<u64>> = vec![Vec::new(); 8];
        for ops in [&p1, &p2, &p3] {
            for op in ops {
                if let ScriptOp::Op(Instr::Store { addr, value }) = op {
                    written[((addr.0 - 0x100_0000) / 64) as usize].push(*value);
                }
            }
        }

        let mut cfg = SystemConfig::cmp8(Model::Bulk(BulkConfig::bsc_dypvt()));
        cfg.cores = 3;
        cfg.budget = u64::MAX;
        let programs: Vec<Box<dyn ThreadProgram>> = vec![
            Box::new(ScriptProgram::new(p1)),
            Box::new(ScriptProgram::new(p2)),
            Box::new(ScriptProgram::new(p3)),
        ];
        let mut sys = System::new(cfg, programs);
        prop_assert!(sys.run(20_000_000), "random program hung:\n{}", sys.debug_state());

        // Atomicity: the counter is exactly the number of FetchAdds.
        prop_assert_eq!(sys.values().read(Addr(0x200_0000)), expected_counter);

        // Provenance: each slot holds 0 or one of the stored values.
        for slot in 0..8u64 {
            let v = sys.values().read(Addr(0x100_0000 + slot * 64));
            prop_assert!(
                v == 0 || written[slot as usize].contains(&v),
                "slot {slot} holds {v}, never written"
            );
        }

        // Observations likewise: only 0 or genuinely-written values.
        for obs in sys.observations() {
            for v in obs {
                let slot_values: Vec<u64> = written.iter().flatten().copied().collect();
                prop_assert!(v == 0 || slot_values.contains(&v));
            }
        }
    }
}
