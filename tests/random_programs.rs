//! Randomized whole-system tests: randomized multithreaded programs
//! executed on the BulkSC machine must respect per-location coherence and
//! atomicity invariants that every sequentially consistent machine
//! satisfies.
//!
//! These were proptest properties; they are now a deterministic seeded
//! loop (no external dependencies, hermetically reproducible). Every case
//! derives from `SplitMix64`, so a failure's seed pins the exact program.

use bulksc::{BulkConfig, Model, System, SystemConfig};
use bulksc_sig::Addr;
use bulksc_stats::SplitMix64;
use bulksc_workloads::{Instr, RmwOp, ScriptOp, ScriptProgram, ThreadProgram};

const CASES: u64 = 24;

/// A small random program: stores tagged with unique values, RMW
/// increments, loads, compute padding.
fn random_program(rng: &mut SplitMix64, thread: u64) -> Vec<ScriptOp> {
    let len = 1 + rng.gen_index(24);
    (0..len)
        .map(|_| match rng.gen_index(5) {
            0 => {
                let slot = rng.gen_range(0..8);
                let v = rng.gen_range(1..1000);
                ScriptOp::Op(Instr::Store {
                    addr: Addr(0x100_0000 + slot * 64),
                    value: thread * 1_000_000 + v,
                })
            }
            1 => {
                let slot = rng.gen_range(0..8);
                ScriptOp::Op(Instr::Load {
                    addr: Addr(0x100_0000 + slot * 64),
                    consume: false,
                })
            }
            2 => ScriptOp::Op(Instr::Rmw {
                addr: Addr(0x200_0000),
                op: RmwOp::FetchAdd(1),
            }),
            3 => ScriptOp::Op(Instr::Compute(1 + rng.gen_range(0..39) as u32)),
            _ => {
                let slot = rng.gen_range(0..8);
                ScriptOp::Record(Addr(0x100_0000 + slot * 64))
            }
        })
        .collect()
}

fn rmw_count(ops: &[ScriptOp]) -> u64 {
    ops.iter()
        .filter(|o| matches!(o, ScriptOp::Op(Instr::Rmw { .. })))
        .count() as u64
}

/// Every final memory value is a value someone actually wrote, and the
/// shared RMW counter is exact (chunk atomicity).
#[test]
fn random_programs_preserve_write_provenance_and_atomicity() {
    for case in 0..CASES {
        let mut rng = SplitMix64::new(0x5eed_0000 + case);
        let p1 = random_program(&mut rng, 1);
        let p2 = random_program(&mut rng, 2);
        let p3 = random_program(&mut rng, 3);
        let expected_counter = rmw_count(&p1) + rmw_count(&p2) + rmw_count(&p3);
        let mut written: Vec<Vec<u64>> = vec![Vec::new(); 8];
        for ops in [&p1, &p2, &p3] {
            for op in ops {
                if let ScriptOp::Op(Instr::Store { addr, value }) = op {
                    written[((addr.0 - 0x100_0000) / 64) as usize].push(*value);
                }
            }
        }

        let mut cfg = SystemConfig::cmp8(Model::Bulk(BulkConfig::bsc_dypvt()));
        cfg.cores = 3;
        cfg.budget = u64::MAX;
        let programs: Vec<Box<dyn ThreadProgram>> = vec![
            Box::new(ScriptProgram::new(p1)),
            Box::new(ScriptProgram::new(p2)),
            Box::new(ScriptProgram::new(p3)),
        ];
        let mut sys = System::new(cfg, programs);
        assert!(
            sys.run(20_000_000),
            "case {case}: random program hung:\n{}",
            sys.debug_state()
        );

        // Atomicity: the counter is exactly the number of FetchAdds.
        assert_eq!(
            sys.values().read(Addr(0x200_0000)),
            expected_counter,
            "case {case}: RMW counter"
        );

        // Provenance: each slot holds 0 or one of the stored values.
        for slot in 0..8u64 {
            let v = sys.values().read(Addr(0x100_0000 + slot * 64));
            assert!(
                v == 0 || written[slot as usize].contains(&v),
                "case {case}: slot {slot} holds {v}, never written"
            );
        }

        // Observations likewise: only 0 or genuinely-written values.
        let slot_values: Vec<u64> = written.iter().flatten().copied().collect();
        for obs in sys.observations() {
            for v in obs {
                assert!(
                    v == 0 || slot_values.contains(&v),
                    "case {case}: observed {v}, never written"
                );
            }
        }
    }
}
