//! Tracing must observe without perturbing: same-seed runs emit
//! byte-identical event streams, and a traced run retires the same
//! instructions in the same cycles as an untraced one.

use bulksc::{BulkConfig, Model, SimReport, System, SystemConfig};
use bulksc_trace::{ChromeTracer, JsonlTracer, RingTracer, TraceHandle};
use bulksc_workloads::{by_name, SyntheticApp, ThreadProgram};

fn build(budget: u64, seed: u64) -> System {
    let mut cfg = SystemConfig::cmp8(Model::Bulk(BulkConfig::bsc_dypvt()));
    cfg.budget = budget;
    let app = by_name("ocean").expect("catalog app");
    let programs: Vec<Box<dyn ThreadProgram>> = (0..cfg.cores)
        .map(|t| Box::new(SyntheticApp::new(app, t, cfg.cores, seed)) as Box<dyn ThreadProgram>)
        .collect();
    System::new(cfg, programs)
}

fn traced_run(budget: u64, seed: u64) -> (SimReport, String, u64) {
    let mut sys = build(budget, seed);
    let jsonl = JsonlTracer::shared();
    let ring = RingTracer::shared(64);
    let mut trace = TraceHandle::off();
    trace.attach(jsonl.clone());
    trace.attach(ring.clone());
    sys.set_tracer(trace);
    assert!(sys.run(u64::MAX / 4), "traced run finishes");
    let seen = ring.borrow().seen();
    let text = jsonl.borrow().contents().to_string();
    (SimReport::collect(&sys), text, seen)
}

#[test]
fn same_seed_runs_emit_byte_identical_traces() {
    let (r1, t1, n1) = traced_run(3_000, 7);
    let (r2, t2, n2) = traced_run(3_000, 7);
    assert!(n1 > 0, "a real run emits events");
    assert_eq!(n1, n2);
    assert_eq!(r1.cycles, r2.cycles);
    assert_eq!(t1, t2, "same seed, same bytes");

    // A different seed is a different execution — and a different stream.
    let (_, t3, _) = traced_run(3_000, 8);
    assert_ne!(t1, t3);
}

#[test]
fn tracing_does_not_perturb_the_simulation() {
    let mut untraced = build(3_000, 7);
    assert!(untraced.run(u64::MAX / 4));
    let base = SimReport::collect(&untraced);

    let (traced, _, _) = traced_run(3_000, 7);
    assert_eq!(base.cycles, traced.cycles, "cycle counts bit-identical");
    assert_eq!(base.retired, traced.retired);
    assert_eq!(base.chunks_committed, traced.chunks_committed);
    assert_eq!(base.traffic.total(), traced.traffic.total());

    // The latency histograms and cycle-loss attribution are part of the
    // simulation's observable state: tracing must leave them bit-identical
    // too (the instrumentation is always on, never trace-gated).
    assert_eq!(base.lat_execute, traced.lat_execute);
    assert_eq!(base.lat_arbitration, traced.lat_arbitration);
    assert_eq!(base.lat_commit_visible, traced.lat_commit_visible);
    assert_eq!(base.lat_dir_update, traced.lat_dir_update);
    assert_eq!(base.lat_l1_miss, traced.lat_l1_miss);
    assert_eq!(base.cycle_loss, traced.cycle_loss);

    // Sampling is observation-only too.
    let mut sampled = build(3_000, 7);
    sampled.enable_sampling(500);
    assert!(sampled.run(u64::MAX / 4));
    let s = SimReport::collect(&sampled);
    assert_eq!(base.cycles, s.cycles);
    assert!(!sampled.samples().is_empty());
    let total_retired: u64 = sampled
        .samples()
        .iter()
        .flat_map(|s| s.retired_delta.iter())
        .sum();
    assert!(total_retired <= s.retired);
}

#[test]
fn every_jsonl_line_is_valid_json() {
    let (_, text, _) = traced_run(2_000, 3);
    assert!(!text.is_empty());
    assert_eq!(
        text.lines().next().unwrap(),
        bulksc_trace::jsonl_header(),
        "line 1 is the schema header"
    );
    for line in text.lines() {
        assert!(
            bulksc_trace::json::is_valid(line),
            "invalid JSONL line: {line}"
        );
    }
}

#[test]
fn cycle_loss_partitions_every_core_timeline() {
    // Seeded end-to-end check of the attribution invariant: on a full
    // multi-core run, every bulk core's cycle-loss table (including the
    // report-time tail) sums to exactly the simulated cycle count.
    let mut sys = build(3_000, 7);
    assert!(sys.run(u64::MAX / 4));
    let r = SimReport::collect(&sys);
    assert_eq!(r.cycle_loss.len(), 8, "one table per core on the cmp8");
    for (core, loss) in r.cycle_loss.iter().enumerate() {
        assert_eq!(
            loss.total(),
            r.cycles,
            "core {core}: cycle-loss total must equal run cycles ({loss:?})"
        );
        assert!(loss.get("committed") > 0, "core {core} committed work");
    }
    // Every grant produced an arbitration and a visibility sample.
    assert_eq!(r.lat_arbitration.count(), r.chunks_committed);
    assert_eq!(r.lat_commit_visible.count(), r.chunks_committed);
    assert!(r.lat_execute.count() >= r.chunks_committed);
}

#[test]
fn sample_series_carries_schema_and_gauges() {
    let mut sys = build(3_000, 7);
    sys.enable_sampling(500);
    assert!(sys.run(u64::MAX / 4));
    let series = sys.interval_series().expect("sampling enabled");
    let text = series.to_json().to_string();
    let doc = bulksc_trace::Json::parse(&text).expect("samples parse");
    assert_eq!(
        doc.get("schema").and_then(bulksc_trace::Json::as_str),
        Some("bulksc-samples")
    );
    assert_eq!(
        doc.get("version").and_then(bulksc_trace::Json::as_u64),
        Some(bulksc_trace::SCHEMA_VERSION)
    );
    assert_eq!(
        doc.get("every").and_then(bulksc_trace::Json::as_u64),
        Some(500),
        "the sampling interval is recorded in the header"
    );
    let samples = doc.get("samples").and_then(bulksc_trace::Json::as_arr);
    let first = samples
        .and_then(|s| s.first())
        .expect("at least one sample");
    assert!(
        first.get("arb_queue").is_some(),
        "arbiter queue-depth gauge"
    );
    assert!(
        first.get("squashing_cores").is_some(),
        "outstanding-squash gauge"
    );
}

#[test]
fn mid_run_sampling_does_not_inflate_the_first_interval() {
    // Regression test: `enable_sampling` used to start the series from a
    // zero baseline, so when enabled mid-run the first interval absorbed
    // the *entire* run-so-far retirement and its IPC was inflated by
    // orders of magnitude. The series must prime from the current state.
    let mut sys = build(3_000, 7);
    assert!(!sys.run(2_000), "still mid-run at cycle 2000");
    sys.enable_sampling(500);
    assert!(sys.run(u64::MAX / 4));

    let samples = sys.samples();
    assert!(!samples.is_empty(), "sampling produced intervals");
    let width = sys.config().core.retire_width as f64;
    for s in samples {
        for (core, &ipc) in s.ipc.iter().enumerate() {
            assert!(
                ipc <= width,
                "cycle {}: core {core} IPC {ipc} exceeds the retire width \
                 {width} — first-interval baseline not primed",
                s.cycle
            );
        }
        for (core, &delta) in s.retired_delta.iter().enumerate() {
            assert!(
                delta <= 500 * sys.config().core.retire_width as u64,
                "cycle {}: core {core} retired {delta} in a 500-cycle interval",
                s.cycle
            );
        }
    }
}

#[test]
fn timeline_reconstruction_matches_live_trace() {
    // End-to-end: a real traced run feeds `bulksc-analyze timeline` logic
    // and every chunk_start finds its commit, squash, or abandon.
    let (r, text, _) = traced_run(3_000, 7);
    let tl = bulksc_bench::analyze::timeline(&text, "mem").expect("trace parses");
    assert!(
        tl.unmatched.is_empty(),
        "every chunk span terminates: {:?}",
        tl.unmatched
    );
    assert_eq!(
        tl.commits + tl.orphan_ends,
        r.chunks_committed,
        "every committed chunk ends a span (the first chunk per core \
         opened before the tracer attached, so it has no start)"
    );
    assert!(bulksc_trace::json::is_valid(&tl.chrome_trace));
}

#[test]
fn chrome_trace_is_valid_json_document() {
    let mut sys = build(2_000, 3);
    let chrome = ChromeTracer::shared();
    let mut trace = TraceHandle::off();
    trace.attach(chrome.clone());
    sys.set_tracer(trace);
    assert!(sys.run(u64::MAX / 4));
    let doc = chrome.borrow().finish();
    assert!(!chrome.borrow().is_empty());
    assert!(
        bulksc_trace::json::is_valid(&doc),
        "chrome trace must parse"
    );
}

#[test]
fn ring_dump_appears_in_debug_state() {
    let mut sys = build(1_000, 3);
    let ring = RingTracer::shared(32);
    let mut trace = TraceHandle::off();
    trace.attach(ring);
    sys.set_tracer(trace);
    assert!(sys.run(u64::MAX / 4));
    let dump = sys.debug_state();
    assert!(
        dump.contains("trace ring: last"),
        "debug_state carries the ring tail:\n{dump}"
    );
}
