//! Streaming-vs-batch equivalence: the windowed, pool-parallel checker
//! added for the unbounded-memory fix must be *indistinguishable* from
//! the historical batch oracle on every trace this repo can produce.
//!
//! Three corpora:
//!
//! * every litmus-catalog trace under a BulkSC preset — legal runs whose
//!   certificates (witness, edge count, ambiguity count, final memory)
//!   must agree at every window shape and pool width;
//! * the `commit_without_arbitration` fault trace — a *violation* whose
//!   report (headline, named accesses, edge labels) must come out
//!   byte-identical from the streaming path;
//! * a seeded fuzz corpus — contended synthetic-app runs, the same
//!   traces the `bulksc-fuzz --stream-check` differential sweeps.

use bulksc::{BulkConfig, Model, System, SystemConfig};
use bulksc_bench::fuzz;
use bulksc_check::{check, check_stream, CheckError, CollectingTracer, StreamConfig, ValueTrace};
use bulksc_sig::Addr;
use bulksc_trace::TraceHandle;
use bulksc_workloads::{litmus, FuzzSpec, Instr, ScriptOp, ScriptProgram, ThreadProgram};

/// Run `programs` under `model` with value tracing on; return the trace.
fn run_traced(model: Model, dirs: u32, programs: Vec<Box<dyn ThreadProgram>>) -> ValueTrace {
    let mut cfg = SystemConfig::cmp8(model);
    cfg.cores = programs.len() as u32;
    cfg.dirs = dirs;
    cfg.budget = u64::MAX;
    let mut sys = System::new(cfg, programs);
    let tracer = CollectingTracer::shared();
    let mut trace = TraceHandle::off();
    trace.attach(tracer.clone());
    sys.set_tracer(trace);
    assert!(
        sys.run(10_000_000),
        "did not finish:\n{}",
        sys.debug_state()
    );
    let trace = tracer.borrow_mut().take();
    trace
}

/// Certify `trace` through every streaming shape and insist each answer
/// matches the batch oracle: single-window streaming must reproduce the
/// exact witness; windowed streaming (at pool widths 1 and 4) must agree
/// on verdict, access count, final memory, and produce a witness hash
/// that is invariant under the pool width.
fn assert_equivalent(name: &str, trace: &ValueTrace, window: usize) {
    let cert = check(&trace.accesses, &trace.lifecycle)
        .unwrap_or_else(|e| panic!("{name}: batch oracle rejected a legal trace:\n{e}"));

    let one = check_stream(&trace.accesses, &trace.lifecycle, StreamConfig::batch())
        .unwrap_or_else(|e| panic!("{name}: single-window streaming rejected the trace:\n{e}"));
    assert_eq!(
        one.witness.as_deref(),
        Some(cert.witness.as_slice()),
        "{name}: single-window streaming must reproduce the batch witness"
    );
    assert_eq!(one.edges, cert.edges, "{name}: edge counts diverge");
    assert_eq!(
        one.ambiguous_reads, cert.ambiguous_reads,
        "{name}: ambiguity counts diverge"
    );
    assert_eq!(
        one.final_memory, cert.final_memory,
        "{name}: replayed memory diverges"
    );

    let mut hashes = Vec::new();
    for jobs in [1usize, 4] {
        let w = check_stream(
            &trace.accesses,
            &trace.lifecycle,
            StreamConfig::windowed(window).with_jobs(jobs),
        )
        .unwrap_or_else(|e| {
            panic!("{name}: windowed streaming (jobs {jobs}) rejected the trace:\n{e}")
        });
        assert_eq!(w.accesses, cert.accesses, "{name}: access count diverges");
        assert_eq!(
            w.final_memory, cert.final_memory,
            "{name}: windowed replayed memory diverges (jobs {jobs})"
        );
        // Ambiguity is frontier-local in windowed mode (a retired
        // same-value writer no longer competes), so the count may only
        // shrink relative to batch — never grow.
        assert!(
            w.ambiguous_reads <= cert.ambiguous_reads,
            "{name}: windowed mode invented ambiguity (jobs {jobs}): \
             {} > {}",
            w.ambiguous_reads,
            cert.ambiguous_reads
        );
        hashes.push(w.witness_hash);
    }
    assert_eq!(
        hashes[0], hashes[1],
        "{name}: pool width changed the windowed witness hash"
    );
}

#[test]
fn every_litmus_trace_streams_to_the_same_verdict() {
    for test in litmus::catalog() {
        let skews: Vec<u32> = (0..test.threads()).map(|t| (t as u32 * 7) % 23).collect();
        let trace = run_traced(
            Model::Bulk(BulkConfig::bsc_dypvt()),
            1,
            test.programs(&skews),
        );
        assert!(!trace.accesses.is_empty(), "{}: empty trace", test.name);
        // Window 64 slices every litmus trace into several windows.
        assert_equivalent(test.name, &trace, 64);
    }
}

/// Store-buffering with plain loads (see `tests/check_oracle.rs`): only
/// commit arbitration keeps it SC, so `commit_without_arbitration`
/// leaks the classic non-SC outcome for the oracle to catch.
fn sb_plain(skew: u32) -> Vec<Box<dyn ThreadProgram>> {
    let x = Addr(0x100);
    let y = Addr(0x1100); // different cache lines
    let prog = |mine: Addr, other: Addr, skew: u32| -> Box<dyn ThreadProgram> {
        Box::new(ScriptProgram::new(vec![
            ScriptOp::WarmRead(mine),
            ScriptOp::WarmRead(other),
            ScriptOp::Op(Instr::Compute(40 + skew)),
            ScriptOp::Op(Instr::Store {
                addr: mine,
                value: 1,
            }),
            ScriptOp::Op(Instr::Load {
                addr: other,
                consume: false,
            }),
        ]))
    };
    vec![prog(x, y, 0), prog(y, x, skew)]
}

#[test]
fn the_injected_fault_produces_an_identical_violation_report() {
    let mut faulty = BulkConfig::bsc_base();
    faulty.commit_without_arbitration = true;

    let mut compared = false;
    for skew in 0..8u32 {
        let trace = run_traced(Model::Bulk(faulty.clone()), 1, sb_plain(skew));
        let batch = match check(&trace.accesses, &trace.lifecycle) {
            Ok(_) => continue, // this skew escaped; try the next
            Err(e @ CheckError::Violation(_)) => e,
            Err(CheckError::Malformed(m)) => panic!("malformed trace: {m}"),
        };
        // Single-window streaming: the full report — headline, named
        // accesses, edge labels, lifecycle context — must be identical.
        let stream = check_stream(&trace.accesses, &trace.lifecycle, StreamConfig::batch())
            .expect_err("streaming must reject what batch rejects");
        assert_eq!(
            batch.to_string(),
            stream.to_string(),
            "streaming must render the same violation report"
        );
        // And the report must not depend on the pool width.
        let mut reports = Vec::new();
        for jobs in [1usize, 4] {
            let err = check_stream(
                &trace.accesses,
                &trace.lifecycle,
                StreamConfig::batch().with_jobs(jobs),
            )
            .expect_err("streaming must reject at any width");
            match &err {
                CheckError::Violation(_) => {}
                other => panic!("expected a violation, got: {other}"),
            }
            reports.push(err.to_string());
        }
        assert_eq!(
            reports[0], reports[1],
            "pool width changed the violation report"
        );
        compared = true;
        break;
    }
    assert!(
        compared,
        "commit_without_arbitration never produced a violation to compare"
    );
}

#[test]
fn a_seeded_fuzz_corpus_streams_to_the_same_verdicts() {
    let entries = fuzz::sweep();
    let spec = FuzzSpec {
        ops_per_thread: 80,
        ..FuzzSpec::default()
    };
    for entry in entries.iter().take(3) {
        for seed in [1u64, 2] {
            let (trace, _) = fuzz::run_traced(entry, spec, seed);
            assert!(
                !trace.accesses.is_empty(),
                "{} seed {seed}: empty trace",
                entry.name
            );
            // Window 256 matches the `--stream-check` differential shape.
            assert_equivalent(&format!("{} seed {seed}", entry.name), &trace, 256);
        }
    }
}
