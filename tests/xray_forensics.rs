//! End-to-end contracts for the xray conflict-forensics pipeline.
//!
//! Two claims are pinned here, because the whole feature is worthless if
//! either drifts:
//!
//! 1. **Attribution is free when off and invisible when on.** With
//!    `xray` disabled the event stream carries no attribution fields at
//!    all (schema v5 adds optional keys, never nulls), and turning it on
//!    must not change a single simulated number — attribution reads
//!    machine state, it never writes it.
//! 2. **The alias/true-sharing classification is ground truth.** Under
//!    `SigMode::Exact` there are no Bloom false positives, so no squash
//!    may ever be classified `alias`; under pinned Bloom signatures the
//!    per-cause event counts must reconcile exactly with the
//!    `SimReport` squash totals.

use bulksc::{BulkConfig, Model, SimReport, System, SystemConfig};
use bulksc_trace::{JsonlTracer, TraceHandle};
use bulksc_workloads::{by_name, litmus, SyntheticApp, ThreadProgram};

/// Run `app` on the 8-core CMP with a JSONL tracer attached; returns the
/// event stream and the report.
fn traced_run(config: BulkConfig, app: &str, budget: u64) -> (String, SimReport) {
    let mut cfg = SystemConfig::cmp8(Model::Bulk(config));
    cfg.budget = budget;
    let app = by_name(app).expect("catalog app");
    let programs: Vec<Box<dyn ThreadProgram>> = (0..cfg.cores)
        .map(|t| {
            Box::new(SyntheticApp::new(app, t, cfg.cores, bulksc_bench::SEED))
                as Box<dyn ThreadProgram>
        })
        .collect();
    let mut sys = System::new(cfg, programs);
    let sink = JsonlTracer::shared();
    let mut trace = TraceHandle::off();
    trace.attach(sink.clone());
    sys.set_tracer(trace);
    assert!(sys.run(u64::MAX / 4), "traced run finishes");
    let text = sink.borrow().contents().to_string();
    let report = SimReport::collect(&sys);
    (text, report)
}

/// Count squash events in a JSONL stream whose `cause` matches `label`.
fn squashes_with_cause(stream: &str, label: &str) -> u64 {
    let needle = format!("\"cause\":\"{label}\"");
    stream
        .lines()
        .filter(|l| l.contains("\"ev\":\"squash\"") && l.contains(&needle))
        .count() as u64
}

#[test]
fn xray_off_emits_no_attribution_and_on_changes_no_simulated_number() {
    let (off_stream, off_report) = traced_run(BulkConfig::bsc_dypvt(), "radix", 25_000);
    let (on_stream, on_report) = traced_run(BulkConfig::bsc_dypvt().with_xray(), "radix", 25_000);

    // Off: byte-for-byte free. No `site`, no witness lists, no aggressor
    // fields anywhere in the stream — a v5 reader of an xray-off trace
    // sees exactly what a v4 reader saw.
    assert!(
        !off_stream.contains("\"site\"") && !off_stream.contains("\"witness\""),
        "xray-off stream must carry no attribution fields"
    );
    assert!(
        !off_stream.contains("\"agg_core\""),
        "xray-off stream must carry no aggressor fields"
    );

    // On: the enriched stream attributes real conflicts...
    assert!(
        on_stream.contains("\"site\""),
        "xray-on ocean run must attribute at least one conflict"
    );

    // ...but the simulation is bit-identical: same report either way.
    assert_eq!(
        off_report.to_json().to_string(),
        on_report.to_json().to_string(),
        "attribution must not perturb any simulated number"
    );

    // And the streams differ only by the attribution fields: stripping
    // every xray key from the on-stream recovers the off-stream.
    let stripped: String = on_stream
        .lines()
        .map(|l| {
            let mut s = l.to_string();
            for key in ["\"agg_core\":", "\"agg_seq\":", "\"site\":", "\"witness\":"] {
                while let Some(start) = s.find(key) {
                    // The field starts after a comma (attribution keys are
                    // never the first field of an event object).
                    let comma = s[..start].rfind(',').expect("xray key follows a comma");
                    let tail = &s[start + key.len()..];
                    let mut depth = 0usize;
                    let mut end = tail.len();
                    for (i, c) in tail.char_indices() {
                        match c {
                            '[' => depth += 1,
                            ']' => depth -= 1,
                            ',' | '}' if depth == 0 => {
                                end = i;
                                break;
                            }
                            _ => {}
                        }
                    }
                    s = format!("{}{}", &s[..comma], &s[start + key.len() + end..]);
                }
            }
            s
        })
        .collect::<Vec<_>>()
        .join("\n")
        + "\n";
    assert_eq!(
        stripped, off_stream,
        "xray-on stream must be the xray-off stream plus attribution fields"
    );
}

#[test]
fn exact_signatures_never_classify_a_squash_as_alias() {
    // Exact signatures have no false positives by construction, so the
    // classifier must never call a squash `alias` — on the contended
    // app...
    let (stream, report) = traced_run(BulkConfig::bsc_exact().with_xray(), "radix", 25_000);
    assert!(report.true_squashes > 0, "radix under Exact still squashes");
    assert_eq!(
        squashes_with_cause(&stream, "alias"),
        0,
        "SigMode::Exact admits no alias squashes"
    );

    // ...and across the whole litmus catalog at several timing skews.
    for test in litmus::catalog() {
        for round in 0..4u32 {
            let skews: Vec<u32> = (0..test.threads())
                .map(|t| (round * 7 + t as u32 * 3) % 13)
                .collect();
            let mut cfg = SystemConfig::cmp8(Model::Bulk(BulkConfig::bsc_exact().with_xray()));
            cfg.cores = test.threads() as u32;
            cfg.budget = u64::MAX;
            let mut sys = System::new(cfg, test.programs(&skews));
            let sink = JsonlTracer::shared();
            let mut trace = TraceHandle::off();
            trace.attach(sink.clone());
            sys.set_tracer(trace);
            assert!(sys.run(10_000_000), "{}: did not finish", test.name);
            let stream = sink.borrow().contents().to_string();
            assert_eq!(
                squashes_with_cause(&stream, "alias"),
                0,
                "{} round {round}: Exact signatures classified an alias squash",
                test.name
            );
        }
    }
}

#[test]
fn bloom_cause_counts_reconcile_with_the_report_totals() {
    let (stream, report) = traced_run(BulkConfig::bsc_dypvt().with_xray(), "radix", 25_000);
    let true_events = squashes_with_cause(&stream, "true-sharing");
    let alias_events = squashes_with_cause(&stream, "alias");
    let overflow_events = squashes_with_cause(&stream, "overflow");

    assert!(
        true_events + alias_events + overflow_events > 0,
        "the contended app must squash at this budget"
    );
    // `SimReport::collect` folds overflow (a capacity artifact of the
    // same Bloom encoding) into the alias column.
    assert_eq!(
        alias_events + overflow_events,
        report.alias_squashes,
        "alias+overflow events must sum to the report's alias total"
    );
    assert_eq!(
        true_events, report.true_squashes,
        "true-sharing events must sum to the report's true total"
    );
    assert_eq!(
        true_events + alias_events + overflow_events,
        report.alias_squashes + report.true_squashes,
        "every squash carries exactly one cause"
    );
}
