//! CLI drift gate: `bulksc-analyze`'s real subcommand set (the match
//! arms in its `main`) must stay in lockstep with both the binary's own
//! `usage()` text and the README's `### bulksc-analyze` section. A
//! subcommand that exists but is undocumented — or documented but gone —
//! fails here, not in a user's terminal.

use std::path::Path;

fn repo_file(rel: &str) -> String {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    std::fs::read_to_string(root.join(rel)).unwrap_or_else(|e| panic!("read {rel}: {e}"))
}

/// The subcommand names, scraped from `main`'s match arms. Arms look
/// like `("report", paths) if ...` — tuple patterns whose first element
/// is a string literal; flag-parsing matches deeper in the file reuse
/// the same shape but always start with `--`, so they are filtered out.
fn subcommands(source: &str) -> Vec<String> {
    let mut names: Vec<String> = Vec::new();
    for line in source.lines() {
        let Some(rest) = line.trim_start().strip_prefix("(\"") else {
            continue;
        };
        let Some(end) = rest.find('"') else { continue };
        let name = &rest[..end];
        if !name.starts_with('-') && !names.iter().any(|n| n == name) {
            names.push(name.to_string());
        }
    }
    names
}

/// The body of `fn usage()` (the eprintln! block).
fn usage_text(source: &str) -> &str {
    let start = source
        .find("fn usage()")
        .expect("bulksc-analyze defines usage()");
    let tail = &source[start..];
    let end = tail.find("\n}").expect("usage() has a body");
    &tail[..end]
}

/// The README's analyze section: from its heading to the next `### `.
fn readme_analyze_section(readme: &str) -> &str {
    let start = readme
        .find("### bulksc-analyze")
        .expect("README documents bulksc-analyze");
    let tail = &readme[start + 4..]; // past this heading's own "### "
    let end = tail.find("\n### ").map(|i| i + 4).unwrap_or(tail.len());
    &readme[start..start + end]
}

#[test]
fn every_subcommand_is_documented_in_usage_and_readme() {
    let source = repo_file("crates/bench/src/bin/analyze.rs");
    let names = subcommands(&source);
    // Sanity: the scraper found the real arm list, not an empty set.
    for expected in ["report", "check", "query", "convert", "xray"] {
        assert!(
            names.iter().any(|n| n == expected),
            "scraper lost the {expected:?} arm; found {names:?}"
        );
    }
    assert!(names.len() >= 10, "suspiciously few subcommands: {names:?}");

    let usage = usage_text(&source);
    let readme = repo_file("README.md");
    let section = readme_analyze_section(&readme);
    for name in &names {
        assert!(
            usage.contains(&format!("bulksc-analyze {name} ")),
            "subcommand {name:?} missing from usage()"
        );
        assert!(
            section.contains(&format!("`{name}`")),
            "subcommand {name:?} missing from README's bulksc-analyze section"
        );
    }
}

#[test]
fn usage_and_readme_advertise_no_phantom_subcommands() {
    let source = repo_file("crates/bench/src/bin/analyze.rs");
    let names = subcommands(&source);
    for line in usage_text(&source).lines() {
        let Some(after) = line.split("bulksc-analyze ").nth(1) else {
            continue;
        };
        let advertised = after.split_whitespace().next().unwrap_or("");
        assert!(
            names.iter().any(|n| n == advertised),
            "usage() advertises {advertised:?}, which has no match arm"
        );
    }
}
