//! The reproduction's central correctness claim (paper §3.1): every
//! execution a BulkSC machine produces is sequentially consistent at the
//! individual-access level, even though the machine reorders aggressively
//! inside and across chunks.
//!
//! Each litmus test runs under every BulkSC configuration (and the SC
//! baseline) across many timing skews; the SC-forbidden outcome must never
//! appear. RC, run on the same machine, does exhibit the store-buffering
//! reordering — the checkers are not vacuous.

use bulksc::{BulkConfig, Model, System, SystemConfig};
use bulksc_cpu::BaselineModel;
use bulksc_workloads::litmus;

fn run_litmus(model: Model, test: &litmus::Litmus, skews: &[u32]) -> Vec<Vec<u64>> {
    let mut cfg = SystemConfig::cmp8(model);
    cfg.cores = test.threads() as u32;
    cfg.budget = u64::MAX;
    let mut sys = System::new(cfg, test.programs(skews));
    assert!(
        sys.run(10_000_000),
        "{}: did not finish:\n{}",
        test.name,
        sys.debug_state()
    );
    sys.observations()
}

fn assert_sc(model: Model) {
    for test in litmus::catalog() {
        for round in 0..8u32 {
            let skews: Vec<u32> = (0..test.threads())
                .map(|t| (round * 11 + t as u32 * 5) % 29)
                .collect();
            let obs = run_litmus(model.clone(), &test, &skews);
            assert!(
                !(test.forbidden)(&obs),
                "{} under {}: forbidden outcome {obs:?} (round {round})",
                test.name,
                model.name()
            );
        }
    }
}

#[test]
fn bsc_base_is_sequentially_consistent() {
    assert_sc(Model::Bulk(BulkConfig::bsc_base()));
}

#[test]
fn bsc_dypvt_is_sequentially_consistent() {
    assert_sc(Model::Bulk(BulkConfig::bsc_dypvt()));
}

#[test]
fn bsc_stpvt_is_sequentially_consistent() {
    assert_sc(Model::Bulk(BulkConfig::bsc_stpvt()));
}

#[test]
fn bsc_exact_is_sequentially_consistent() {
    assert_sc(Model::Bulk(BulkConfig::bsc_exact()));
}

#[test]
fn bsc_with_big_and_small_chunks_is_sequentially_consistent() {
    assert_sc(Model::Bulk(BulkConfig::bsc_dypvt().with_chunk_size(64)));
    assert_sc(Model::Bulk(BulkConfig::bsc_dypvt().with_chunk_size(4000)));
}

#[test]
fn bsc_without_rsig_is_sequentially_consistent() {
    assert_sc(Model::Bulk(BulkConfig::bsc_dypvt().without_rsig()));
}

#[test]
fn sc_baseline_is_sequentially_consistent() {
    assert_sc(Model::Baseline(BaselineModel::Sc));
}

#[test]
fn rc_is_weaker_so_the_checkers_are_not_vacuous() {
    let test = litmus::store_buffering();
    let mut seen = false;
    for round in 0..20u32 {
        let obs = run_litmus(
            Model::Baseline(BaselineModel::Rc),
            &test,
            &[round % 5, (round * 7) % 5],
        );
        if (test.forbidden)(&obs) {
            seen = true;
            break;
        }
    }
    assert!(seen, "RC never produced the store-buffering outcome");
}
