//! The reproduction's central correctness claim (paper §3.1): every
//! execution a BulkSC machine produces is sequentially consistent at the
//! individual-access level, even though the machine reorders aggressively
//! inside and across chunks.
//!
//! Each litmus test runs under every BulkSC configuration (and the SC
//! baseline) across many timing skews; the SC-forbidden outcome must never
//! appear. RC, run on the same machine, does exhibit the store-buffering
//! reordering — the checkers are not vacuous.

use bulksc::{BulkConfig, Model, System, SystemConfig};
use bulksc_check::CollectingTracer;
use bulksc_cpu::BaselineModel;
use bulksc_trace::TraceHandle;
use bulksc_workloads::litmus;

/// Run one litmus test; returns the observations plus the `bulksc-check`
/// oracle's verdict on the run's full value trace (`None` when the model
/// does not emit value events, i.e. SC++).
fn run_litmus(
    model: Model,
    test: &litmus::Litmus,
    skews: &[u32],
) -> (Vec<Vec<u64>>, Option<Result<(), String>>) {
    let mut cfg = SystemConfig::cmp8(model);
    cfg.cores = test.threads() as u32;
    cfg.budget = u64::MAX;
    let mut sys = System::new(cfg, test.programs(skews));
    let tracer = CollectingTracer::shared();
    let mut trace = TraceHandle::off();
    trace.attach(tracer.clone());
    sys.set_tracer(trace);
    assert!(
        sys.run(10_000_000),
        "{}: did not finish:\n{}",
        test.name,
        sys.debug_state()
    );
    let value_trace = tracer.borrow_mut().take();
    let verdict = if value_trace.accesses.is_empty() {
        None
    } else {
        Some(value_trace.verify().map(|_| ()).map_err(|e| e.to_string()))
    };
    (sys.observations(), verdict)
}

fn assert_sc(model: Model) {
    for test in litmus::catalog() {
        for round in 0..8u32 {
            let skews: Vec<u32> = (0..test.threads())
                .map(|t| (round * 11 + t as u32 * 5) % 29)
                .collect();
            let (obs, verdict) = run_litmus(model.clone(), &test, &skews);
            assert!(
                !(test.forbidden)(&obs),
                "{} under {}: forbidden outcome {obs:?} (round {round})",
                test.name,
                model.name()
            );
            // Every forbidden-outcome check also routes through the full
            // SC oracle: the predicate watches a few registers, the
            // oracle certifies every access of the run.
            match verdict {
                Some(Ok(())) => {}
                Some(Err(e)) => panic!(
                    "{} under {} (round {round}): oracle rejected the run:\n{e}",
                    test.name,
                    model.name()
                ),
                None => panic!(
                    "{} under {}: no value trace — tracing unwired?",
                    test.name,
                    model.name()
                ),
            }
        }
    }
}

#[test]
fn bsc_base_is_sequentially_consistent() {
    assert_sc(Model::Bulk(BulkConfig::bsc_base()));
}

#[test]
fn bsc_dypvt_is_sequentially_consistent() {
    assert_sc(Model::Bulk(BulkConfig::bsc_dypvt()));
}

#[test]
fn bsc_stpvt_is_sequentially_consistent() {
    assert_sc(Model::Bulk(BulkConfig::bsc_stpvt()));
}

#[test]
fn bsc_exact_is_sequentially_consistent() {
    assert_sc(Model::Bulk(BulkConfig::bsc_exact()));
}

#[test]
fn bsc_with_big_and_small_chunks_is_sequentially_consistent() {
    assert_sc(Model::Bulk(BulkConfig::bsc_dypvt().with_chunk_size(64)));
    assert_sc(Model::Bulk(BulkConfig::bsc_dypvt().with_chunk_size(4000)));
}

#[test]
fn bsc_without_rsig_is_sequentially_consistent() {
    assert_sc(Model::Bulk(BulkConfig::bsc_dypvt().without_rsig()));
}

#[test]
fn sc_baseline_is_sequentially_consistent() {
    assert_sc(Model::Baseline(BaselineModel::Sc));
}

#[test]
fn bsc_with_tiny_chunks_under_arbiter_contention_is_sequentially_consistent() {
    // 16-instruction chunks turn every litmus test into a stream of
    // commit requests fighting over the same lines — the arbiter path
    // under maximum pressure.
    assert_sc(Model::Bulk(BulkConfig::bsc_base().with_chunk_size(16)));
    assert_sc(Model::Bulk(BulkConfig::bsc_dypvt().with_chunk_size(16)));
}

#[test]
fn rc_is_weaker_so_the_checkers_are_not_vacuous() {
    let test = litmus::store_buffering();
    let mut seen = false;
    for round in 0..20u32 {
        let (obs, _) = run_litmus(
            Model::Baseline(BaselineModel::Rc),
            &test,
            &[round % 5, (round * 7) % 5],
        );
        if (test.forbidden)(&obs) {
            seen = true;
            break;
        }
    }
    assert!(seen, "RC never produced the store-buffering outcome");
}
