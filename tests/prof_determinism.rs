//! The self-profiler must observe without perturbing: a same-seed run
//! with `bulksc-prof` enabled emits byte-identical traces and reports to
//! one with it disabled. Host-time measurement lives entirely outside the
//! simulated machine, so nothing it does may leak into simulated state.

use bulksc::{BulkConfig, Model, SimReport, System, SystemConfig};
use bulksc_prof as prof;
use bulksc_trace::{JsonlTracer, TraceHandle};
use bulksc_workloads::{by_name, SyntheticApp, ThreadProgram};

fn build(budget: u64, seed: u64) -> System {
    let mut cfg = SystemConfig::cmp8(Model::Bulk(BulkConfig::bsc_dypvt()));
    cfg.budget = budget;
    let app = by_name("ocean").expect("catalog app");
    let programs: Vec<Box<dyn ThreadProgram>> = (0..cfg.cores)
        .map(|t| Box::new(SyntheticApp::new(app, t, cfg.cores, seed)) as Box<dyn ThreadProgram>)
        .collect();
    System::new(cfg, programs)
}

/// One traced run; with `profiled`, the whole run executes inside a
/// profiler enable→disable window (the `bulksc-perf` measurement setup).
fn traced_run(
    profiled: bool,
    budget: u64,
    seed: u64,
) -> (String, String, Option<prof::ProfReport>) {
    if profiled {
        prof::enable();
    }
    let mut sys = build(budget, seed);
    let jsonl = JsonlTracer::shared();
    let mut trace = TraceHandle::off();
    trace.attach(jsonl.clone());
    sys.set_tracer(trace);
    assert!(sys.run(u64::MAX / 4), "run finishes");
    let report = SimReport::collect(&sys).to_json().to_string();
    let text = jsonl.borrow().contents().to_string();
    let prof_report = profiled.then(prof::disable);
    (text, report, prof_report)
}

#[test]
fn profiler_does_not_perturb_traces_or_reports() {
    let (trace_off, report_off, none) = traced_run(false, 3_000, 7);
    let (trace_on, report_on, pr) = traced_run(true, 3_000, 7);
    assert!(none.is_none());

    // The profiler really measured something...
    let pr = pr.expect("profiled run returns a report");
    assert!(pr.wall_ns > 0);
    assert!(pr.phase(prof::Phase::Run).is_some(), "step loop profiled");
    assert!(
        pr.phase(prof::Phase::TraceEmit).is_some(),
        "trace emission profiled"
    );

    // ...and none of it reached the simulated machine: the JSONL event
    // stream is byte-identical and so is the full serialized SimReport.
    assert_eq!(
        trace_off, trace_on,
        "profiler must not perturb the event stream"
    );
    assert_eq!(
        report_off, report_on,
        "profiler must not perturb the report"
    );
}

#[test]
fn disabled_profiler_collects_nothing_across_a_run() {
    assert!(!prof::is_enabled());
    let (_, _, _) = traced_run(false, 1_000, 3);
    // Scopes hit during the run were no-ops; enabling afterwards starts
    // from a clean slate rather than inheriting stale counts.
    prof::enable();
    let report = prof::disable();
    assert!(report.phases.is_empty(), "no residue from unprofiled runs");
}

#[test]
fn profiled_rerun_is_deterministic_too() {
    // Two profiled same-seed runs agree with each other (the profiler
    // adds no run-to-run wobble to the simulated side either).
    let (t1, r1, _) = traced_run(true, 2_000, 11);
    let (t2, r2, _) = traced_run(true, 2_000, 11);
    assert_eq!(t1, t2);
    assert_eq!(r1, r2);
}
