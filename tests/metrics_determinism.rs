//! The metrics registry's two contracts, end to end.
//!
//! 1. **Width-invariant merge.** A `--metrics` sweep shards the registry
//!    per pool worker and merges post-join; counters sum, gauges take
//!    maxima, histograms add bucket-wise — all commutative — so the merged
//!    deterministic snapshot must be byte-identical at `--jobs` 1, 4, 8.
//! 2. **Strictly out-of-band.** Enabling the registry (and the live
//!    progress atomics) must not perturb anything the simulator produces:
//!    figure text, `results/*.json` RunLogs, SimReports, and JSONL event
//!    traces stay byte-identical with metrics on or off.
//!
//! Tests that touch the process-global snapshot slot (`publish` /
//! `take_global` — any pool run wider than one worker with collection on)
//! serialize on a static mutex; the cargo test harness runs `#[test]`s
//! concurrently and the global slot is one per process.

use std::sync::Mutex;

use bulksc::{BulkConfig, Model, SimReport, System, SystemConfig};
use bulksc_bench::figures;
use bulksc_metrics as metrics;
use bulksc_trace::{JsonlTracer, TraceHandle};
use bulksc_workloads::{by_name, SyntheticApp, ThreadProgram};

/// Serializes every test that publishes to / drains the global snapshot.
static GLOBAL_SLOT: Mutex<()> = Mutex::new(());

fn lock() -> std::sync::MutexGuard<'static, ()> {
    GLOBAL_SLOT.lock().unwrap_or_else(|p| p.into_inner())
}

/// fig9 at `width` with collection on; returns (merged deterministic
/// snapshot text, figure text, RunLog JSON).
fn fig9_with_metrics(width: usize) -> (String, String, String) {
    metrics::reset_global();
    metrics::enable();
    let out = figures::fig9(600, width);
    let mut snap = metrics::disable();
    snap.merge(&metrics::take_global());
    (
        snap.deterministic_text(),
        out.text,
        out.log.to_json().to_string(),
    )
}

#[test]
fn registry_merge_is_byte_identical_at_widths_1_4_8() {
    let _g = lock();
    let (snap1, fig1, log1) = fig9_with_metrics(1);
    let (snap4, fig4, log4) = fig9_with_metrics(4);
    let (snap8, fig8, log8) = fig9_with_metrics(8);

    assert_eq!(snap1, snap4, "merged registry must not depend on --jobs");
    assert_eq!(snap1, snap8, "merged registry must not depend on --jobs");
    // The sweep really collected: sim counters and the pool's own are in.
    assert!(snap1.contains("sim_chunks_committed"), "{snap1}");
    assert!(!snap1.contains("sim_chunks_committed 0\n"), "{snap1}");
    assert!(snap1.contains("pool_jobs_completed 13"), "{snap1}");

    // The figure surfaces are width-invariant too (metrics on).
    assert_eq!(fig1, fig4);
    assert_eq!(fig1, fig8);
    assert_eq!(log1, log4);
    assert_eq!(log1, log8);

    // ... and identical to a metrics-off run: out-of-band at every width.
    let off = figures::fig9(600, 4);
    assert_eq!(fig1, off.text, "figure text must not depend on --metrics");
    assert_eq!(
        log1,
        off.log.to_json().to_string(),
        "results/fig9.json must not depend on --metrics"
    );
}

#[test]
fn live_progress_tracks_a_sweep_without_touching_its_output() {
    let _g = lock();
    metrics::reset_global();
    metrics::live::activate();
    metrics::enable();
    let out = figures::table3(500, 4);
    metrics::live::deactivate();
    let live = metrics::live::snapshot();
    let mut snap = metrics::disable();
    snap.merge(&metrics::take_global());

    assert!(live.total > 0, "sweep enqueued jobs");
    assert_eq!(live.done, live.total, "all jobs completed");
    assert_eq!(live.in_flight, 0);
    assert_eq!(live.queue_depth, 0);
    assert!(live.queue_peak >= live.total, "peak saw the full queue");
    assert_eq!(live.panicked, 0);
    assert_eq!(
        snap.counter(metrics::Counter::PoolJobsCompleted),
        live.done,
        "registry and live agree on completions"
    );

    let off = figures::table3(500, 4);
    assert_eq!(out.text, off.text, "live tracking is out-of-band");
}

/// One traced run: JSONL event stream plus the SimReport JSON.
fn traced_run() -> (String, String) {
    let mut cfg = SystemConfig::cmp8(Model::Bulk(BulkConfig::bsc_dypvt()));
    cfg.budget = 800;
    let app = by_name("ocean").unwrap();
    let programs: Vec<Box<dyn ThreadProgram>> = (0..cfg.cores)
        .map(|t| {
            Box::new(SyntheticApp::new(app, t, cfg.cores, bulksc_bench::SEED))
                as Box<dyn ThreadProgram>
        })
        .collect();
    let mut sys = System::new(cfg, programs);
    let sink = JsonlTracer::shared();
    let mut handle = TraceHandle::off();
    handle.attach(sink.clone());
    sys.set_tracer(handle);
    assert!(sys.run(u64::MAX / 4));
    let report = SimReport::collect(&sys).to_json().to_string();
    let stream = sink.borrow().contents().to_string();
    (stream, report)
}

#[test]
fn traces_and_simreports_are_unchanged_metrics_on_vs_off() {
    // Thread-local enable only — no pool, no global slot, no lock needed.
    let (stream_off, report_off) = traced_run();
    metrics::enable();
    let (stream_on, report_on) = traced_run();
    let snap = metrics::disable();

    assert_eq!(
        stream_off, stream_on,
        "JSONL event stream must not depend on --metrics"
    );
    assert_eq!(
        report_off, report_on,
        "SimReport JSON must not depend on --metrics"
    );
    // The metered run really counted — out-of-band, not off.
    assert!(snap.counter(metrics::Counter::ChunksCommitted) > 0);
    assert!(snap.counter(metrics::Counter::InstrsCommitted) > 0);
    assert_eq!(
        snap.hist(metrics::Hist::ChunkInstrs).count(),
        snap.counter(metrics::Counter::ChunksCommitted),
        "one histogram observation per committed chunk"
    );
}

#[test]
fn disabled_registry_collects_nothing() {
    // No enable() on this thread: a full simulated run must leave every
    // shard untouched (the zero-cost-when-off contract).
    let (_, _) = traced_run();
    metrics::enable();
    let snap = metrics::disable();
    assert!(
        snap.is_empty(),
        "a disabled registry must not accumulate: {}",
        snap.deterministic_text()
    );
}
