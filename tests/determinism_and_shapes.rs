//! Cross-crate sanity: the simulator is deterministic, and the headline
//! result shapes of the paper hold on small runs (the full-size versions
//! live in the bench harness and EXPERIMENTS.md).

use bulksc::{BulkConfig, Model, SimReport, System, SystemConfig};
use bulksc_cpu::BaselineModel;
use bulksc_net::TrafficClass;
use bulksc_workloads::{by_name, SyntheticApp, ThreadProgram};

fn run(model: Model, app: &str, budget: u64, seed: u64) -> SimReport {
    let params = by_name(app).expect("catalog app");
    let mut cfg = SystemConfig::cmp8(model);
    cfg.budget = budget;
    let programs: Vec<Box<dyn ThreadProgram>> = (0..cfg.cores)
        .map(|t| Box::new(SyntheticApp::new(params, t, cfg.cores, seed)) as Box<dyn ThreadProgram>)
        .collect();
    let mut sys = System::new(cfg, programs);
    assert!(sys.run(u64::MAX / 4), "run finished");
    SimReport::collect(&sys)
}

#[test]
fn identical_seeds_give_identical_runs() {
    let a = run(Model::Bulk(BulkConfig::bsc_dypvt()), "barnes", 5_000, 9);
    let b = run(Model::Bulk(BulkConfig::bsc_dypvt()), "barnes", 5_000, 9);
    assert_eq!(a.cycles, b.cycles);
    assert_eq!(a.traffic.total(), b.traffic.total());
    assert_eq!(a.chunks_committed, b.chunks_committed);
    assert_eq!(a.retired, b.retired);
}

#[test]
fn different_seeds_change_the_execution() {
    let a = run(Model::Bulk(BulkConfig::bsc_dypvt()), "barnes", 5_000, 9);
    let b = run(Model::Bulk(BulkConfig::bsc_dypvt()), "barnes", 5_000, 10);
    assert_ne!(
        (a.cycles, a.traffic.total()),
        (b.cycles, b.traffic.total()),
        "seeded workloads should differ"
    );
}

#[test]
fn bulk_sc_performs_close_to_rc() {
    // The paper's headline: BSCdypvt ≈ RC. Allow a generous band on this
    // small run.
    let rc = run(Model::Baseline(BaselineModel::Rc), "lu", 8_000, 3);
    let bsc = run(Model::Bulk(BulkConfig::bsc_dypvt()), "lu", 8_000, 3);
    let speedup = rc.cycles as f64 / bsc.cycles as f64;
    assert!(
        speedup > 0.85 && speedup < 1.15,
        "BSCdypvt should be within 15% of RC, got {speedup:.3}"
    );
}

#[test]
fn sc_baseline_is_slower_than_rc() {
    let rc = run(Model::Baseline(BaselineModel::Rc), "ocean", 8_000, 3);
    let sc = run(Model::Baseline(BaselineModel::Sc), "ocean", 8_000, 3);
    assert!(
        sc.cycles > rc.cycles,
        "SC ({}) should be slower than RC ({})",
        sc.cycles,
        rc.cycles
    );
}

#[test]
fn rsig_optimization_cuts_rdsig_bytes() {
    let with = run(Model::Bulk(BulkConfig::bsc_dypvt()), "ocean", 8_000, 3);
    let without = run(
        Model::Bulk(BulkConfig::bsc_dypvt().without_rsig()),
        "ocean",
        8_000,
        3,
    );
    assert!(with.traffic.bytes(TrafficClass::RdSig) < without.traffic.bytes(TrafficClass::RdSig));
}

#[test]
fn dynamically_private_data_reduces_write_sets() {
    // §5.2's point: Wpriv absorbs dirty-line rewrites, shrinking W.
    let base = run(Model::Bulk(BulkConfig::bsc_base()), "water-sp", 10_000, 3);
    let dypvt = run(Model::Bulk(BulkConfig::bsc_dypvt()), "water-sp", 10_000, 3);
    assert!(
        dypvt.write_set < base.write_set,
        "dypvt W ({:.2}) should be below base W ({:.2})",
        dypvt.write_set,
        base.write_set
    );
    assert!(
        dypvt.priv_write_set > 0.5,
        "Wpriv should absorb the rewrites"
    );
}

#[test]
fn statically_private_data_empties_r_and_w_of_stack_traffic() {
    let dypvt = run(Model::Bulk(BulkConfig::bsc_dypvt()), "water-sp", 10_000, 3);
    let stpvt = run(Model::Bulk(BulkConfig::bsc_stpvt()), "water-sp", 10_000, 3);
    assert!(
        stpvt.read_set < dypvt.read_set,
        "static-private reads leave R: {:.1} vs {:.1}",
        stpvt.read_set,
        dypvt.read_set
    );
    assert!(stpvt.empty_w_pct > dypvt.empty_w_pct);
}

#[test]
fn exact_signature_never_alias_squashes() {
    let r = run(Model::Bulk(BulkConfig::bsc_exact()), "radix", 10_000, 3);
    assert_eq!(r.alias_squashes, 0, "a magic signature cannot alias");
}

#[test]
fn chunk_size_sweep_runs_and_commits_fewer_bigger_chunks() {
    let small = run(
        Model::Bulk(BulkConfig::bsc_dypvt().with_chunk_size(500)),
        "lu",
        6_000,
        3,
    );
    let big = run(
        Model::Bulk(BulkConfig::bsc_dypvt().with_chunk_size(4000)),
        "lu",
        6_000,
        3,
    );
    assert!(small.chunks_committed > big.chunks_committed);
    assert!(
        big.read_set > small.read_set,
        "bigger chunks carry bigger sets"
    );
}

#[test]
fn distributed_arbiter_machine_matches_single_arbiter_results() {
    let single = run(Model::Bulk(BulkConfig::bsc_dypvt()), "lu", 5_000, 3);
    let mut cfg = SystemConfig::cmp8(Model::Bulk(BulkConfig::bsc_dypvt().with_arbiters(4)));
    cfg.dirs = 4;
    cfg.budget = 5_000;
    let params = by_name("lu").unwrap();
    let programs: Vec<Box<dyn ThreadProgram>> = (0..cfg.cores)
        .map(|t| Box::new(SyntheticApp::new(params, t, cfg.cores, 3)) as Box<dyn ThreadProgram>)
        .collect();
    let mut sys = System::new(cfg, programs);
    assert!(sys.run(u64::MAX / 4));
    let multi = SimReport::collect(&sys);
    assert_eq!(single.retired, multi.retired, "same useful work");
    // Performance should be in the same ballpark (the paper's claim: the
    // single arbiter is not a bottleneck at this scale).
    let ratio = single.cycles as f64 / multi.cycles as f64;
    assert!((0.7..1.3).contains(&ratio), "ratio {ratio:.3}");
}
