//! Golden-figure regression tests.
//!
//! Each test renders a paper figure/table through the library API
//! (`bulksc_bench::figures`) at a small pinned budget and compares the
//! full text — every header, table cell, and paper-shape line — against
//! a committed fixture in `tests/golden/`. Any behavioural drift in the
//! simulator, the workload generator, the statistics layer, or the table
//! renderer shows up as a byte diff here, with the figure name and the
//! first differing line in the failure message.
//!
//! # Blessing new goldens
//!
//! When an intentional change shifts the numbers, regenerate the
//! fixtures and review the diff like any other code change:
//!
//! ```text
//! BULKSC_BLESS=1 cargo test --test golden_figures
//! git diff tests/golden/        # inspect what moved, then commit
//! ```
//!
//! The budget is deliberately tiny (2 000 instructions/core — these are
//! regression anchors, not paper-quality numbers) and the seed is the
//! workspace-wide `bulksc_bench::SEED`, so the run is fast and the text
//! is identical on every host and at every `--jobs` width.

use bulksc_bench::figures;

/// Pinned budget for golden runs: small enough for CI, large enough
/// that every figure row sees real commits, squashes, and traffic.
const BUDGET: u64 = 2_000;

/// Host worker width. Any value produces identical text (that is the
/// pool's determinism contract, enforced by `tests/pool_determinism.rs`);
/// 2 exercises the parallel path even on a single-core host.
const JOBS: usize = 2;

fn golden_path(name: &str) -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(name)
}

fn compare_or_bless(name: &str, actual: &str) {
    let path = golden_path(name);
    if std::env::var_os("BULKSC_BLESS").is_some_and(|v| v == "1") {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, actual).unwrap();
        eprintln!("blessed {}", path.display());
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "cannot read golden fixture {}: {e}\n\
             (run `BULKSC_BLESS=1 cargo test --test golden_figures` to create it)",
            path.display()
        )
    });
    if actual == expected {
        return;
    }
    let diff_at = actual
        .lines()
        .zip(expected.lines())
        .position(|(a, e)| a != e)
        .map(|i| {
            format!(
                "first differing line ({}):\n  expected: {}\n  actual:   {}",
                i + 1,
                expected.lines().nth(i).unwrap(),
                actual.lines().nth(i).unwrap()
            )
        })
        .unwrap_or_else(|| {
            format!(
                "one output is a prefix of the other \
                 (expected {} lines, actual {} lines)",
                expected.lines().count(),
                actual.lines().count()
            )
        });
    panic!(
        "{name} drifted from its golden fixture.\n{diff_at}\n\
         If the change is intentional, re-bless with \
         `BULKSC_BLESS=1 cargo test --test golden_figures` and commit the diff."
    );
}

#[test]
fn fig9_matches_golden() {
    let out = figures::fig9(BUDGET, JOBS);
    compare_or_bless("fig9.txt", &out.text);
}

#[test]
fn table3_matches_golden() {
    let out = figures::table3(BUDGET, JOBS);
    compare_or_bless("table3.txt", &out.text);
}

#[test]
fn ablations_match_golden() {
    let out = figures::ablations(BUDGET, JOBS);
    compare_or_bless("ablations.txt", &out.text);
}

/// The xray forensics report, end to end: capture the pinned `--xray`
/// run and render it through `bulksc-analyze xray`'s library entry
/// point. Any drift in attribution (aggressor choice, witness lines,
/// alias/true-sharing classification, cascade depths) shows up here as
/// a byte diff. The budget is larger than the figure goldens' because
/// squashes — the whole subject of the report — only start appearing at
/// realistic chunk counts.
#[test]
fn xray_report_matches_golden() {
    use bulksc_bench::{analyze, xray};
    let stream = xray::capture_stream(25_000);
    let report = analyze::xray(&stream, "capture", 10).expect("capture stream parses");
    assert!(
        report.attributed > 0,
        "the pinned capture attributes conflicts"
    );
    compare_or_bless("xray.txt", &report.text);
}
