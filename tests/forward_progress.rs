//! Forward-progress guarantees (paper §3.3): synchronization executes
//! inside chunks with no fences; contention can squash chunks repeatedly,
//! and the exponential chunk-size reduction plus pre-arbitration must
//! guarantee the key processor completes anyway.

use bulksc::{BulkConfig, Model, System, SystemConfig};
use bulksc_sig::Addr;
use bulksc_workloads::{Instr, ScriptOp, ScriptProgram, ThreadProgram};

fn script(ops: Vec<ScriptOp>) -> Box<dyn ThreadProgram> {
    Box::new(ScriptProgram::new(ops))
}

fn run(programs: Vec<Box<dyn ThreadProgram>>, what: &str) -> System {
    let mut cfg = SystemConfig::cmp8(Model::Bulk(BulkConfig::bsc_dypvt()));
    cfg.cores = programs.len() as u32;
    cfg.budget = u64::MAX;
    let mut sys = System::new(cfg, programs);
    assert!(
        sys.run(50_000_000),
        "{what} did not finish:\n{}",
        sys.debug_state()
    );
    sys
}

/// The paper's worst case: all processors but one spin on a variable, and
/// the spin loop *writes* a line the key processor reads — without §3.3's
/// measures the key processor would be squashed forever.
#[test]
fn writing_spinners_cannot_starve_the_key_processor() {
    let flag = Addr(0x100_0000);
    let noise = Addr(0x100_0004); // same line as the flag
    let key = script(vec![
        ScriptOp::Op(Instr::Compute(300)),
        ScriptOp::Record(noise),
        ScriptOp::Op(Instr::Store {
            addr: flag,
            value: 1,
        }),
    ]);
    let spinner = || {
        let mut ops = Vec::new();
        for i in 0..4000u64 {
            ops.push(ScriptOp::Op(Instr::Store {
                addr: noise,
                value: i,
            }));
            ops.push(ScriptOp::Op(Instr::Load {
                addr: flag,
                consume: false,
            }));
            ops.push(ScriptOp::Op(Instr::Compute(3)));
        }
        script(ops)
    };
    let sys = run(
        vec![key, spinner(), spinner(), spinner()],
        "writing-spinner storm",
    );
    assert_eq!(sys.values().read(flag), 1, "key processor made progress");
    let prearbs: u64 = sys
        .nodes()
        .iter()
        .filter_map(|n| n.bulk_stats())
        .map(|s| s.prearbs)
        .sum();
    let squashes: u64 = sys
        .nodes()
        .iter()
        .filter_map(|n| n.bulk_stats())
        .map(|s| s.squashes)
        .sum();
    assert!(squashes > 0, "the scenario should actually be adversarial");
    let _ = prearbs; // pre-arbitration may or may not have been needed
}

/// Eight cores through a contended lock: every critical section executes
/// exactly once and the lock is free at the end.
#[test]
fn eight_core_lock_storm_completes() {
    let lock = Addr(0x10_0000);
    let cells: Vec<Addr> = (0..8).map(|i| Addr(0x100_0000 + i * 64)).collect();
    let programs: Vec<Box<dyn ThreadProgram>> = (0..8u64)
        .map(|i| {
            script(vec![
                ScriptOp::Op(Instr::Compute((i * 13 % 40) as u32 + 1)),
                ScriptOp::AcquireLock(lock),
                ScriptOp::Op(Instr::Store {
                    addr: cells[i as usize],
                    value: i + 1,
                }),
                ScriptOp::ReleaseLock(lock),
            ])
        })
        .collect();
    let sys = run(programs, "8-core lock storm");
    for (i, &c) in cells.iter().enumerate() {
        assert_eq!(sys.values().read(c), i as u64 + 1);
    }
    assert_eq!(sys.values().read(lock), 0, "lock released");
}

/// A sense-reversing barrier across 8 BulkSC cores, twice in a row.
#[test]
fn barriers_release_all_bulk_cores() {
    let count = Addr(0x20_0000);
    let gen = Addr(0x20_0000 + 4);
    let programs: Vec<Box<dyn ThreadProgram>> = (0..8u32)
        .map(|i| {
            script(vec![
                ScriptOp::Op(Instr::Compute(i * 17 + 1)),
                ScriptOp::Barrier { count, gen, n: 8 },
                ScriptOp::Op(Instr::Compute(11)),
                ScriptOp::Barrier { count, gen, n: 8 },
                ScriptOp::Record(gen),
            ])
        })
        .collect();
    let sys = run(programs, "double barrier");
    for obs in sys.observations() {
        assert_eq!(obs, vec![2], "every core saw both generations");
    }
    assert_eq!(sys.values().read(count), 0, "counter reset");
}

/// Atomic increments from all cores: chunk atomicity must make the RMWs
/// truly atomic — the counter ends exactly at cores × increments.
#[test]
fn rmw_counter_is_exact_under_bulk() {
    let counter = Addr(0x100_0000);
    let n = 6u64;
    let k = 25u64;
    let programs: Vec<Box<dyn ThreadProgram>> = (0..n)
        .map(|i| {
            let mut ops = vec![ScriptOp::Op(Instr::Compute((i * 7 % 23) as u32 + 1))];
            for _ in 0..k {
                ops.push(ScriptOp::Op(Instr::Rmw {
                    addr: counter,
                    op: bulksc_workloads::RmwOp::FetchAdd(1),
                }));
                ops.push(ScriptOp::Op(Instr::Compute(9)));
            }
            script(ops)
        })
        .collect();
    let sys = run(programs, "rmw counter");
    assert_eq!(sys.values().read(counter), n * k, "no lost updates");
}

/// I/O operations serialize against chunk commits and the program
/// continues correctly afterwards.
#[test]
fn io_heavy_program_completes_in_order() {
    let a = Addr(0x100_0000);
    let b = Addr(0x100_0040);
    let t0 = script(vec![
        ScriptOp::Op(Instr::Store { addr: a, value: 1 }),
        ScriptOp::Op(Instr::Io),
        ScriptOp::Op(Instr::Store { addr: b, value: 2 }),
        ScriptOp::Op(Instr::Io),
        ScriptOp::Op(Instr::Store { addr: a, value: 3 }),
    ]);
    let t1 = script(vec![ScriptOp::Op(Instr::Compute(5))]);
    let sys = run(vec![t0, t1], "io heavy");
    assert_eq!(sys.values().read(a), 3);
    assert_eq!(sys.values().read(b), 2);
    let io_ops: u64 = sys
        .nodes()
        .iter()
        .filter_map(|n| n.bulk_stats())
        .map(|s| s.io_ops)
        .sum();
    assert_eq!(io_ops, 2);
}
