//! The parallel sweep engine's determinism contract, end to end.
//!
//! `bulksc_bench::pool` promises that the host worker width (`--jobs`)
//! is invisible in every artifact: figure text, `results/*.json`
//! RunLogs, fuzz verdict summaries, and JSONL event traces must be
//! byte-identical whether the sweep ran on one thread or eight. These
//! tests pin that promise at the integration level — each one renders
//! the same work at two widths and compares raw bytes.
//!
//! The runs here use tiny budgets: what is under test is the engine,
//! not the simulated numbers (those are `tests/golden_figures.rs`).

use bulksc::{BulkConfig, Model, System, SystemConfig};
use bulksc_bench::fuzz::{run_sweep_on, sweep};
use bulksc_bench::{figures, pool};
use bulksc_trace::{JsonlTracer, TraceHandle};
use bulksc_workloads::{by_name, FuzzSpec, SyntheticApp, ThreadProgram};

#[test]
fn fig9_text_and_runlog_are_identical_at_any_width() {
    let serial = figures::fig9(600, 1);
    let wide = figures::fig9(600, 8);
    assert_eq!(
        serial.text, wide.text,
        "figure text must not depend on --jobs"
    );
    assert_eq!(
        serial.log.to_json().to_string(),
        wide.log.to_json().to_string(),
        "results/fig9.json must not depend on --jobs"
    );
}

#[test]
fn fuzz_verdicts_are_identical_at_any_width() {
    let entries = sweep();
    let spec = FuzzSpec {
        ops_per_thread: 60,
        ..FuzzSpec::default()
    };
    // stream-check on: the differential streaming pass rides along and
    // must be just as width-invisible as the batch verdicts.
    let serial = run_sweep_on(&entries[..3], &[1, 2], spec, None, 1, true);
    let wide = run_sweep_on(&entries[..3], &[1, 2], spec, None, 4, true);
    assert_eq!(
        serial.render(),
        wide.render(),
        "fuzz output must not depend on --jobs"
    );
    assert_eq!(serial.failures.len(), 0, "these cases certify");
    assert_eq!(serial.runs, 6);
}

/// Each pool job builds its *own* System + TraceHandle + JsonlTracer
/// (the handle is `!Send`, so the compiler already rejects sharing one);
/// the rendered streams that cross the join must still be byte-identical
/// at any width, and identical to a plain serial run.
#[test]
fn jsonl_traces_survive_the_pool_byte_for_byte() {
    fn traced_stream(seed: u64) -> String {
        let mut cfg = SystemConfig::cmp8(Model::Bulk(BulkConfig::bsc_dypvt()));
        cfg.budget = 800;
        let app = by_name("ocean").expect("catalog app");
        let programs: Vec<Box<dyn ThreadProgram>> = (0..cfg.cores)
            .map(|t| Box::new(SyntheticApp::new(app, t, cfg.cores, seed)) as Box<dyn ThreadProgram>)
            .collect();
        let mut sys = System::new(cfg, programs);
        let jsonl = JsonlTracer::shared();
        let mut trace = TraceHandle::off();
        trace.attach(jsonl.clone());
        sys.set_tracer(trace);
        assert!(sys.run(u64::MAX / 4), "traced run finishes");
        let text = jsonl.borrow().contents().to_string();
        text
    }

    fn pooled_streams(width: usize) -> Vec<String> {
        pool::run_all(
            width,
            [3u64, 4, 5]
                .iter()
                .map(|&seed| {
                    pool::Job::new(format!("trace seed {seed}"), move || traced_stream(seed))
                })
                .collect(),
        )
    }

    let serial: Vec<String> = [3u64, 4, 5].iter().map(|&s| traced_stream(s)).collect();
    let narrow = pooled_streams(1);
    let wide = pooled_streams(4);
    assert_eq!(serial, narrow);
    assert_eq!(narrow, wide, "trace bytes must not depend on --jobs");
    assert!(serial[0].lines().count() > 1, "streams carry real events");
}

/// The xray forensics pipeline rides the same contract: the `--xray`
/// capture stream and the rendered `bulksc-analyze xray` report must be
/// byte-identical whether the host pool is 1, 4, or 8 workers wide.
#[test]
fn xray_captures_and_reports_are_identical_at_any_width() {
    use bulksc_bench::{analyze, xray};

    fn pooled(width: usize) -> Vec<String> {
        pool::run_all(
            width,
            (0..3)
                .map(|i| pool::Job::new(format!("xray {i}"), || xray::capture_stream(700)))
                .collect(),
        )
    }

    let serial: Vec<String> = (0..3).map(|_| xray::capture_stream(700)).collect();
    let narrow = pooled(1);
    let mid = pooled(4);
    let wide = pooled(8);
    assert_eq!(serial, narrow);
    assert_eq!(narrow, mid, "xray capture bytes must not depend on --jobs");
    assert_eq!(mid, wide, "xray capture bytes must not depend on --jobs");

    let reports: Vec<String> = serial
        .iter()
        .map(|s| {
            analyze::xray(s, "capture", 10)
                .expect("capture parses")
                .text
        })
        .collect();
    assert_eq!(reports[0], reports[1]);
    assert_eq!(reports[1], reports[2], "xray report is deterministic");
}

#[test]
fn a_panicking_job_aborts_the_sweep_naming_the_scenario() {
    let result = std::panic::catch_unwind(|| {
        pool::run_all(
            4,
            vec![
                pool::Job::new("fig9 barnes", || 1u32),
                pool::Job::new("fig9 ocean", || panic!("simulated wedge")),
                pool::Job::new("fig9 radix", || 3u32),
            ],
        )
    });
    let payload = result.expect_err("the sweep must re-raise the job panic");
    let msg = payload
        .downcast_ref::<String>()
        .expect("pool re-raises with a String payload");
    assert!(
        msg.contains("fig9 ocean") && msg.contains("simulated wedge"),
        "panic must name the failed scenario, got: {msg}"
    );
}
