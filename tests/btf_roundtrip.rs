//! BTF ⇄ JSONL equivalence, end to end.
//!
//! The binary trace format is only trustworthy if it is *invisible*: any
//! trace this repo can produce must survive `jsonl → btf → jsonl`
//! byte-identically, every consumer (oracle, timeline, xray, query) must
//! reach the same answer from either encoding, and the block index must
//! demonstrably skip work without ever changing a result. Three corpora
//! pin that:
//!
//! * the demo-example trace (the run behind `results/trace_demo.jsonl`);
//! * a live xray capture — squash causes, conflict-attribution blobs,
//!   witness lists, net hops — recorded through *both* sinks;
//! * a seeded fuzz corpus under contended configs (value events, the
//!   same traces `bulksc-fuzz` differentially sweeps).

use bulksc::{BulkConfig, Model, System, SystemConfig};
use bulksc_bench::analyze::{self, QueryFilter};
use bulksc_bench::{fuzz, xray};
use bulksc_check::{check_btf_reader, check_jsonl_reader, StreamConfig};
use bulksc_trace::btf::{btf_to_jsonl, jsonl_to_btf};
use bulksc_trace::{BtfWriter, IndexedBtf, JsonlTracer, TraceHandle};
use bulksc_workloads::{by_name, fuzz_programs, FuzzSpec, SyntheticApp, ThreadProgram};

/// The `examples/trace_demo.rs` run (ocean, seed 42, budget 5k), traced
/// as JSONL — the same stream `scripts/ci.sh` converts and queries.
fn demo_jsonl() -> String {
    let mut cfg = SystemConfig::cmp8(Model::Bulk(BulkConfig::bsc_dypvt()));
    cfg.budget = 5_000;
    let app = by_name("ocean").expect("catalog app");
    let programs: Vec<Box<dyn ThreadProgram>> = (0..cfg.cores)
        .map(|t| Box::new(SyntheticApp::new(app, t, cfg.cores, 42)) as Box<dyn ThreadProgram>)
        .collect();
    let mut sys = System::new(cfg, programs);
    let sink = JsonlTracer::shared();
    let mut handle = TraceHandle::off();
    handle.attach(sink.clone());
    sys.set_tracer(handle);
    assert!(sys.run(u64::MAX / 4), "demo run finishes");
    let text = sink.borrow().contents().to_string();
    text
}

/// One fuzz case recorded as JSONL text (the same run shape
/// `fuzz::run_traced` certifies, with the text sink attached instead).
fn fuzz_jsonl(entry: &fuzz::SweepEntry, spec: FuzzSpec, seed: u64) -> String {
    let mut cfg = SystemConfig::cmp8(entry.model.clone());
    cfg.cores = spec.threads;
    cfg.dirs = entry.dirs;
    cfg.l1 = entry.l1;
    cfg.budget = u64::MAX;
    let mut sys = System::new(cfg, fuzz_programs(spec, seed));
    let sink = JsonlTracer::shared();
    let mut handle = TraceHandle::off();
    handle.attach(sink.clone());
    sys.set_tracer(handle);
    assert!(
        sys.run(50_000_000),
        "fuzz seed {seed} under {} did not finish",
        entry.name
    );
    let text = sink.borrow().contents().to_string();
    text
}

/// Every trace the round-trip must hold on: name + JSONL text.
fn corpus() -> Vec<(String, String)> {
    let mut traces = vec![
        ("trace_demo".to_string(), demo_jsonl()),
        ("xray capture".to_string(), xray::capture_stream(25_000)),
    ];
    let spec = FuzzSpec {
        ops_per_thread: 80,
        ..FuzzSpec::default()
    };
    for entry in fuzz::sweep().iter().take(3) {
        for seed in [1u64, 2] {
            traces.push((
                format!("{} seed {seed}", entry.name),
                fuzz_jsonl(entry, spec, seed),
            ));
        }
    }
    traces
}

#[test]
fn jsonl_btf_jsonl_is_byte_identical_on_every_corpus_trace() {
    for (name, text) in corpus() {
        let btf = jsonl_to_btf(&text).unwrap_or_else(|e| panic!("{name}: encode: {e}"));
        assert!(
            btf.len() < text.len(),
            "{name}: BTF ({} bytes) must be smaller than JSONL ({} bytes)",
            btf.len(),
            text.len()
        );
        let back = btf_to_jsonl(&btf).unwrap_or_else(|e| panic!("{name}: decode: {e}"));
        assert_eq!(
            back, text,
            "{name}: jsonl → btf → jsonl must be byte-identical"
        );
    }
}

#[test]
fn checker_verdicts_agree_across_formats_and_pool_widths() {
    for (name, text) in corpus() {
        if !text.contains("\"ev\":\"val_") {
            continue; // no value events — nothing for the oracle
        }
        let btf = jsonl_to_btf(&text).unwrap_or_else(|e| panic!("{name}: encode: {e}"));
        let mut hashes = Vec::new();
        for jobs in [1usize, 4] {
            let cfg = StreamConfig::windowed(512).with_jobs(jobs);
            let j = check_jsonl_reader(text.as_bytes(), name.as_str(), cfg.clone())
                .unwrap_or_else(|e| panic!("{name}: jsonl path (jobs {jobs}): {e}"));
            let b = check_btf_reader(btf.as_slice(), name.as_str(), cfg)
                .unwrap_or_else(|e| panic!("{name}: btf path (jobs {jobs}): {e}"));
            assert_eq!(j.accesses, b.accesses, "{name}: access counts diverge");
            assert_eq!(
                j.witness_hash, b.witness_hash,
                "{name}: witness hash diverges across formats (jobs {jobs})"
            );
            assert_eq!(
                j.final_memory, b.final_memory,
                "{name}: replayed memory diverges across formats"
            );
            assert_eq!(j.summary(), b.summary(), "{name}: certificates diverge");
            hashes.push(b.witness_hash);
        }
        assert_eq!(
            hashes[0], hashes[1],
            "{name}: pool width changed the BTF-path witness hash"
        );
    }
}

#[test]
fn btf_tracer_capture_decodes_to_the_jsonl_capture() {
    // The same pinned xray run through both sinks: the BtfTracer artifact
    // must decode to exactly what the JsonlTracer wrote, and the derived
    // reports must not notice which encoding they came from.
    let jsonl = xray::capture_stream(25_000);
    let btf = xray::capture_stream_btf(25_000);
    assert_eq!(
        btf_to_jsonl(&btf).expect("decode BtfTracer artifact"),
        jsonl,
        "the two sinks must record the identical event stream"
    );

    let tl_j = analyze::timeline(&jsonl, "capture.jsonl").expect("timeline (jsonl)");
    let decoded = btf_to_jsonl(&btf).unwrap();
    let tl_b = analyze::timeline(&decoded, "capture.jsonl").expect("timeline (btf)");
    assert_eq!(
        tl_j.summary(),
        tl_b.summary(),
        "timeline diverges across formats"
    );
    assert_eq!(
        tl_j.chrome_trace, tl_b.chrome_trace,
        "chrome trace diverges across formats"
    );

    let x_j = analyze::xray(&jsonl, "capture.jsonl", 10).expect("xray (jsonl)");
    let x_b = analyze::xray(&decoded, "capture.jsonl", 10).expect("xray (btf)");
    assert_eq!(x_j.text, x_b.text, "xray report diverges across formats");
    assert_eq!(x_j.dot, x_b.dot, "xray dot graph diverges across formats");
}

#[test]
fn query_skips_unmatching_blocks_without_changing_results() {
    // Small blocks force a multi-block artifact; a narrow cycle filter
    // must then skip whole blocks (the index proof) while producing the
    // exact result of the full-scan JSONL path.
    let text = demo_jsonl();
    let events: Vec<(u64, bulksc_trace::Event)> = text
        .lines()
        .skip(1)
        .map(|l| {
            let json = bulksc_trace::Json::parse(l).expect("demo trace line parses");
            bulksc_trace::btf::event_from_json(&json).expect("demo trace event decodes")
        })
        .collect();
    assert!(events.len() > 1_000, "demo trace is non-trivial");

    let mut w = BtfWriter::new(Vec::new()).unwrap().with_block_events(256);
    for (cycle, ev) in &events {
        w.push(*cycle, ev).unwrap();
    }
    let bytes = w.finish().unwrap();
    let mut btf = IndexedBtf::new(std::io::Cursor::new(bytes)).unwrap();
    let blocks_total = btf.index().len();
    assert!(blocks_total > 3, "filter test needs several blocks");

    // A cycle window covering only the first block's range...
    let first_max = btf.index()[0].max_cycle;
    let filters = [
        QueryFilter {
            core: None,
            kinds: Vec::new(),
            cycles: Some((0, first_max)),
            line: None,
        },
        // ...and a kind that never occurs, which must skip *everything*.
        QueryFilter {
            core: None,
            kinds: vec![bulksc_trace::Event::kind_id_of("chunk_abandon").unwrap()],
            cycles: None,
            line: None,
        },
    ];
    for (i, filter) in filters.iter().enumerate() {
        let fast = analyze::query_btf(&mut btf, "demo.btf", filter, None, 0)
            .unwrap_or_else(|e| panic!("query_btf: {e}"));
        assert!(
            fast.blocks_skipped > 0,
            "filter {i}: index skipped nothing ({} blocks decoded of {})",
            fast.blocks_decoded,
            fast.blocks_total
        );
        assert_eq!(
            fast.blocks_decoded + fast.blocks_skipped,
            blocks_total,
            "filter {i}: block accounting is inconsistent"
        );
        let slow = analyze::query_jsonl(&text, "demo.jsonl", filter, None, 0)
            .unwrap_or_else(|e| panic!("query_jsonl: {e}"));
        assert_eq!(
            fast.matched, slow.matched,
            "filter {i}: match counts diverge"
        );
        assert_eq!(fast.lines, slow.lines, "filter {i}: matched events diverge");
    }
    // The never-occurring kind decodes zero blocks: pure index traversal.
    let none = analyze::query_btf(&mut btf, "demo.btf", &filters[1], None, 0).unwrap();
    assert_eq!(
        none.blocks_decoded, 0,
        "an impossible filter must decode nothing"
    );
    assert_eq!(none.matched, 0);
}
