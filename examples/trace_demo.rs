//! Tracing demo: attach every sink to a BulkSC run and write the
//! machine-readable artifacts.
//!
//! `cargo run --release --example trace_demo`
//!
//! Produces, under `results/`:
//! * `trace_demo.jsonl` — one JSON object per event (byte-deterministic
//!   for a given seed);
//! * `trace_demo.trace.json` — Chrome trace-event JSON: open it in
//!   `chrome://tracing` or <https://ui.perfetto.dev> to see chunks,
//!   commits, and squashes on a per-core timeline;
//! * `trace_demo.samples.json` — interval metrics (per-core IPC, pending
//!   W signatures, fabric queue depth, traffic deltas).

use bulksc::{BulkConfig, Model, SimReport, System, SystemConfig};
use bulksc_trace::{ChromeTracer, JsonlTracer, RingTracer, TraceHandle};
use bulksc_workloads::{by_name, SyntheticApp, ThreadProgram};

fn main() {
    let mut cfg = SystemConfig::cmp8(Model::Bulk(BulkConfig::bsc_dypvt()));
    cfg.budget = 5_000;
    let app = by_name("ocean").expect("ocean is in the catalog");
    let programs: Vec<Box<dyn ThreadProgram>> = (0..cfg.cores)
        .map(|t| Box::new(SyntheticApp::new(app, t, cfg.cores, 42)) as Box<dyn ThreadProgram>)
        .collect();
    let mut sys = System::new(cfg, programs);

    // All three sinks share the one event stream; the ring keeps the last
    // few hundred events for stuck-run dumps, the other two export.
    let ring = RingTracer::shared(256);
    let jsonl = JsonlTracer::shared();
    let chrome = ChromeTracer::shared();
    let mut trace = TraceHandle::off();
    trace.attach(ring.clone());
    trace.attach(jsonl.clone());
    trace.attach(chrome.clone());
    sys.set_tracer(trace);
    sys.enable_sampling(1_000); // one IntervalSample every 1000 cycles

    assert!(sys.run(u64::MAX / 4), "the machine drains and finishes");
    let r = SimReport::collect(&sys);

    std::fs::create_dir_all("results").expect("create results/");
    jsonl
        .borrow()
        .write_to("results/trace_demo.jsonl")
        .expect("write jsonl");
    chrome
        .borrow()
        .write_to("results/trace_demo.trace.json")
        .expect("write chrome trace");
    let samples = sys
        .interval_series()
        .expect("sampler enabled")
        .to_json()
        .to_string();
    assert!(
        bulksc_trace::json::is_valid(&samples),
        "samples serialize to valid JSON"
    );
    std::fs::write("results/trace_demo.samples.json", format!("{samples}\n"))
        .expect("write samples");

    println!(
        "run       : {} on ocean, {} cycles, {} instructions",
        r.model, r.cycles, r.retired
    );
    println!(
        "events    : {} traced ({} JSONL lines)",
        ring.borrow().seen(),
        jsonl.borrow().lines()
    );
    println!("chrome    : {} trace events", chrome.borrow().len());
    println!(
        "samples   : {} intervals of 1000 cycles",
        sys.samples().len()
    );
    for s in sys.samples().iter().take(3) {
        let ipc: Vec<String> = s.ipc.iter().map(|x| format!("{x:.2}")).collect();
        println!(
            "  cycle {:>5}: ipc [{}] pend_w {} arb_q {} squashing {} fabric {} Δbytes {}",
            s.cycle,
            ipc.join(" "),
            s.pending_w,
            s.arb_queue,
            s.squashing_cores,
            s.fabric_depth,
            s.traffic_bytes_delta
        );
    }
    println!("wrote results/trace_demo.jsonl");
    println!("wrote results/trace_demo.trace.json  (load in ui.perfetto.dev)");
    println!("wrote results/trace_demo.samples.json");
    println!("\nlast events before the end of the run:");
    let dump = ring.borrow().dump();
    for line in dump
        .lines()
        .rev()
        .take(8)
        .collect::<Vec<_>>()
        .into_iter()
        .rev()
    {
        println!("  {line}");
    }
}
