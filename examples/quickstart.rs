//! Quickstart: build the paper's 8-core BulkSC machine, run a workload,
//! and read off the headline numbers.
//!
//! `cargo run --release --example quickstart`

use bulksc::{BulkConfig, Model, SimReport, System, SystemConfig};
use bulksc_workloads::{by_name, SyntheticApp, ThreadProgram};

fn main() {
    // 1. Pick the paper's preferred configuration: BulkSC with the
    //    dynamically-private data optimization (BSCdypvt, §5.2).
    let mut cfg = SystemConfig::cmp8(Model::Bulk(BulkConfig::bsc_dypvt()));
    cfg.budget = 20_000; // dynamic instructions per core

    // 2. Pick a workload. The catalog carries synthetic stand-ins for the
    //    paper's 13 applications, parameterized from its own Tables 3–4.
    let app = by_name("ocean").expect("ocean is in the catalog");
    let programs: Vec<Box<dyn ThreadProgram>> = (0..cfg.cores)
        .map(|t| Box::new(SyntheticApp::new(app, t, cfg.cores, 42)) as Box<dyn ThreadProgram>)
        .collect();

    // 3. Build and run the machine. Execution is deterministic: same seed,
    //    same cycle count, every time.
    let mut sys = System::new(cfg, programs);
    assert!(sys.run(u64::MAX / 4), "the machine drains and finishes");

    // 4. Collect the run report — the same quantities the paper's tables
    //    and figures are built from.
    let r = SimReport::collect(&sys);
    println!("model               : {}", r.model);
    println!("cycles              : {}", r.cycles);
    println!("instructions        : {}", r.retired);
    println!("chunks committed    : {}", r.chunks_committed);
    println!("squashed instr      : {:.2}%", r.squashed_pct);
    println!("avg read set        : {:.1} lines/chunk", r.read_set);
    println!("avg write set       : {:.1} lines/chunk", r.write_set);
    println!("avg priv write set  : {:.1} lines/chunk", r.priv_write_set);
    println!("empty-W commits     : {:.1}%", r.empty_w_pct);
    println!("network traffic     : {} bytes", r.traffic.total());
}
