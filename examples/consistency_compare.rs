//! Compare consistency models on one workload — the experiment at the
//! heart of the BulkSC paper, in miniature.
//!
//! Runs a chosen application (default `ocean`) under SC, RC, SC++, and the
//! four BulkSC configurations on the paper's 8-core CMP, and prints
//! speedups normalized to RC (the paper's Figure 9 convention).
//!
//! Usage: `cargo run --release --example consistency_compare [app] [budget]`

use bulksc::{BulkConfig, Model, SimReport, System, SystemConfig};
use bulksc_cpu::BaselineModel;
use bulksc_stats::Table;
use bulksc_workloads::{by_name, SyntheticApp, ThreadProgram};

fn run(model: Model, app: &str, budget: u64) -> SimReport {
    let params = by_name(app).unwrap_or_else(|| panic!("unknown app {app}"));
    let mut cfg = SystemConfig::cmp8(model);
    cfg.budget = budget;
    let programs: Vec<Box<dyn ThreadProgram>> = (0..cfg.cores)
        .map(|t| Box::new(SyntheticApp::new(params, t, cfg.cores, 42)) as Box<dyn ThreadProgram>)
        .collect();
    let mut sys = System::new(cfg, programs);
    assert!(sys.run(u64::MAX / 4), "simulation finished");
    SimReport::collect(&sys)
}

fn main() {
    let mut args = std::env::args().skip(1);
    let app = args.next().unwrap_or_else(|| "ocean".to_string());
    let budget: u64 = args
        .next()
        .map(|s| s.parse().expect("budget is a number"))
        .unwrap_or(30_000);

    let models = vec![
        Model::Baseline(BaselineModel::Sc),
        Model::Baseline(BaselineModel::Rc),
        Model::Baseline(BaselineModel::Scpp),
        Model::Bulk(BulkConfig::bsc_base()),
        Model::Bulk(BulkConfig::bsc_dypvt()),
        Model::Bulk(BulkConfig::bsc_exact()),
        Model::Bulk(BulkConfig::bsc_stpvt()),
    ];

    println!("app={app}, {budget} instructions/core, 8 cores\n");
    let rc_cycles = run(Model::Baseline(BaselineModel::Rc), &app, budget).cycles;

    let mut table = Table::new(vec![
        "Config".into(),
        "Cycles".into(),
        "Speedup/RC".into(),
        "Squash%".into(),
        "Chunks".into(),
        "Traffic/RC".into(),
    ]);
    let rc_traffic = run(Model::Baseline(BaselineModel::Rc), &app, budget)
        .traffic
        .total();
    for m in models {
        let name = m.name();
        let r = run(m, &app, budget);
        table.row(vec![
            name,
            r.cycles.to_string(),
            format!("{:.3}", rc_cycles as f64 / r.cycles as f64),
            format!("{:.2}", r.squashed_pct),
            r.chunks_committed.to_string(),
            format!("{:.3}", r.traffic.total() as f64 / rc_traffic as f64),
        ]);
    }
    println!("{table}");
}
