//! Signature playground: the Bulk operations of Figure 2 and the aliasing
//! behaviour that shapes the whole evaluation.
//!
//! `cargo run --release --example signature_playground`

use bulksc_sig::{wire_bytes, ExactSet, LineAddr, Signature, SignatureConfig};
use bulksc_stats::SplitMix64;

fn main() {
    let cfg = SignatureConfig::default();
    println!(
        "signature geometry: {} banks x {} bits = {} bits total\n",
        cfg.banks,
        cfg.bank_bits(),
        cfg.total_bits()
    );

    // A chunk's write set and another chunk's read set.
    let w = Signature::from_lines(&cfg, (0..6u64).map(|i| LineAddr(0x4000 + i * 97)));
    let r = Signature::from_lines(&cfg, (0..30u64).map(|i| LineAddr(0x9000 + i * 131)));
    println!("W popcount={}  wire={}B", w.popcount(), wire_bytes(&w));
    println!("R popcount={}  wire={}B", r.popcount(), wire_bytes(&r));
    println!("W ∩ R non-empty? {}", w.intersects(&r));
    println!("0x4000 ∈ W? {}", w.contains(LineAddr(0x4000)));
    println!("δ(W) over 256 cache sets: {:?}\n", w.decode_sets(256));

    // Aliasing: measure the false-positive rate of disambiguation when a
    // strided write set (radix's digit buckets) meets a typical read set
    // (stack lines plus another thread's buckets), vs. fully random sets.
    let mut rng = SplitMix64::new(7);
    for (label, strided) in [("strided", true), ("random", false)] {
        let mut fp = 0;
        let trials = 5_000u64;
        for t in 0..trials {
            let base = 0x40000 + (t % 8) * 64;
            let wl: Vec<LineAddr> = (0..6u64)
                .map(|k| {
                    if strided {
                        LineAddr(base + k * 2048 + (t / 8 + k) % 16)
                    } else {
                        LineAddr(rng.gen_range(0..1_000_000))
                    }
                })
                .collect();
            let rbase = 0x40000 + ((t + 3) % 8) * 64;
            let mut rl: Vec<LineAddr> = (0..30u64)
                .map(|j| LineAddr(0x2000_0000 + rng.gen_range(0..30u64) + j % 2))
                .collect();
            rl.extend((0..10u64).map(|k| {
                if strided {
                    LineAddr(rbase + k * 2048 + (t / 8 + k) % 16)
                } else {
                    LineAddr(rng.gen_range(0..1_000_000))
                }
            }));
            let ws = Signature::from_lines(&cfg, wl.iter().copied());
            let rs = Signature::from_lines(&cfg, rl.iter().copied());
            let we: ExactSet = wl.into_iter().collect();
            let re: ExactSet = rl.into_iter().collect();
            if ws.intersects(&rs) && !we.intersects(&re) {
                fp += 1;
            }
        }
        println!(
            "{label:>8} write pattern: disambiguation false positives = {:.2}%",
            100.0 * fp as f64 / trials as f64
        );
    }
    println!("\n(Strided patterns defeat the bit-permutation hashing — the paper's");
    println!(" radix aliasing. BSCexact models a 'magic' signature without this.)");
}
