//! Litmus demo: watch BulkSC provide SC while RC does not.
//!
//! Runs the classic store-buffering (Dekker) litmus test many times under
//! RC, SC, and BulkSC, and tallies the observed outcomes. The `(0,0)`
//! outcome is forbidden by sequential consistency: RC exhibits it, the SC
//! baseline and every BulkSC configuration never do — that is the paper's
//! whole point (§3.1).
//!
//! `cargo run --release --example litmus_demo`

use std::collections::BTreeMap;

use bulksc::{BulkConfig, Model, System, SystemConfig};
use bulksc_cpu::BaselineModel;
use bulksc_workloads::litmus;

fn tally(model: Model, rounds: u32) -> BTreeMap<(u64, u64), u32> {
    let test = litmus::store_buffering();
    let mut outcomes = BTreeMap::new();
    for round in 0..rounds {
        let skews = [round % 7, (round * 3) % 11];
        let mut cfg = SystemConfig::cmp8(model.clone());
        cfg.cores = 2;
        cfg.budget = u64::MAX;
        let mut sys = System::new(cfg, test.programs(&skews));
        assert!(sys.run(10_000_000), "litmus run finished");
        let obs = sys.observations();
        *outcomes.entry((obs[0][0], obs[1][0])).or_insert(0) += 1;
    }
    outcomes
}

fn main() {
    let rounds = 40;
    println!("Store buffering (SB): T0: x=1; read y   T1: y=1; read x");
    println!("SC forbids the outcome (y,x) = (0,0).\n");
    for model in [
        Model::Baseline(BaselineModel::Rc),
        Model::Baseline(BaselineModel::Sc),
        Model::Bulk(BulkConfig::bsc_base()),
        Model::Bulk(BulkConfig::bsc_dypvt()),
    ] {
        let name = model.name();
        let outcomes = tally(model, rounds);
        let forbidden = outcomes.get(&(0, 0)).copied().unwrap_or(0);
        println!(
            "{name:>9}: outcomes {outcomes:?}  -> forbidden (0,0) seen {forbidden}/{rounds} times{}",
            if forbidden > 0 { "  [NOT sequentially consistent]" } else { "" }
        );
    }
    println!("\nBulkSC reorders as aggressively as RC inside chunks, yet the");
    println!("forbidden outcome never appears: chunk atomicity + commit");
    println!("arbitration give SC at the individual-access level.");
}
